"""The PAGANI main loop (Algorithm 2).

One iteration = one breadth-first sweep over every live sub-region:

1. ``EVALUATE`` all regions with the Genz–Malik rule set (the only step
   needing function-evaluation-level parallelism);
2. refine raw errors with the two-level parent/sibling scheme;
3. ``REL-ERR-CLASSIFY`` regions whose own relative error already meets
   ``τ_rel``;
4. reduce to global estimates and test the termination condition
   ``(e + e_f) / |v + v_f| <= τ_rel`` or ``e + e_f <= τ_abs``;
5. optionally ``THRESHOLD-CLASSIFY`` (Algorithm 3) when the integral
   estimate has stabilised to the requested digits or the next split would
   exhaust device memory;
6. accumulate finished contributions, ``FILTER`` finished regions out of
   memory, ``SPLIT`` the survivors along their fourth-difference axes.

Every step is charged to the virtual device so the simulated-time figures
and the §4.3.2 performance breakdown fall out of the same run.

The loop body lives in :class:`PaganiRun`, a resumable state machine with
one method per phase: :meth:`PaganiRun.prepare_evaluation` builds the
iteration's evaluation chunk thunks without running them, and
:meth:`PaganiRun.complete_iteration` consumes the evaluated arrays and
performs classification, reduction, filtering and splitting.
:meth:`PaganiIntegrator.integrate` simply drives one run to completion;
the batched execution layer (:mod:`repro.batch`) interleaves many runs
over one shared backend by fusing their evaluation thunks into single
submissions.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.backends import BackendLike, get_backend
from repro.core.classify import ThresholdTrace, rel_err_classify, threshold_classify
from repro.core.regions import RegionStore
from repro.core.result import IntegrationResult, IterationRecord, Status
from repro.cubature.evaluation import SweepScratch, evaluate_regions
from repro.cubature.rules import get_rule
from repro.cubature.two_level import two_level_errors
from repro.errors import ConfigurationError
from repro.gpu import thrust
from repro.gpu.device import DeviceSpec, VirtualDevice


@dataclass
class PaganiConfig:
    """Tunable knobs of the PAGANI integrator.

    Defaults follow the paper's experimental setup (§4): τ_abs = 1e-20 so
    the relative condition governs, 256-thread-block-style batch evaluation,
    relative-error filtering on (turn off for integrands oscillating in
    sign, §3.5.1), threshold classification armed on both triggers.
    """

    rel_tol: float = 1e-3
    abs_tol: float = 1e-20
    max_iterations: int = 60
    #: regions in the initial uniform split is the smallest d with
    #: d^ndim >= init_target (d >= 2)
    init_target: int = 2048
    #: explicit splits-per-axis override (None = derive from init_target)
    initial_splits: Optional[int] = None
    #: §3.5.1 user flag: disable relative-error filtering for integrands
    #: taking both signs
    relerr_filtering: bool = True
    #: Algorithm 3 trigger (a): integral estimate stable to the requested
    #: digits while the error is still too large
    threshold_on_convergence: bool = True
    #: Algorithm 3 trigger (b): next split would exhaust device memory
    threshold_on_memory: bool = True
    #: apply Berntsen two-level refinement (ablation knob)
    two_level: bool = True
    #: "cascade" (default: Berntsen–Espelid-style non-asymptotic detection),
    #: "two_rule" (|I7−I5|) or "four_difference" (paper-verbatim max of four)
    error_model: str = "cascade"
    #: Algorithm 3 parameters
    p_max: float = 0.25
    p_max_step: float = 0.10
    p_max_cap: float = 0.95
    mem_fraction: float = 0.5
    max_direction_changes: int = 10
    #: per-region finished test is e_i <= margin·τ_rel·|v_i|; the margin
    #: reserves part of the global budget for threshold commitments
    relerr_margin: float = 0.5
    #: chunking budget for the evaluate sweep (floats per chunk)
    chunk_budget: int = 16_000_000
    #: execution backend for the hot path: a registered name
    #: ("numpy", "threaded", "threaded:<N>", "cupy") or an
    #: :class:`~repro.backends.base.ArrayBackend` instance
    backend: BackendLike = "numpy"

    def validate(self) -> None:
        if not (0.0 < self.rel_tol < 1.0):
            raise ConfigurationError(f"rel_tol must be in (0, 1), got {self.rel_tol}")
        if self.abs_tol < 0.0:
            raise ConfigurationError("abs_tol must be non-negative")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        if self.error_model not in ("cascade", "two_rule", "four_difference"):
            raise ConfigurationError(f"unknown error_model {self.error_model!r}")
        if self.initial_splits is not None and self.initial_splits < 1:
            raise ConfigurationError("initial_splits must be >= 1")

    def splits_for(self, ndim: int) -> int:
        if self.initial_splits is not None:
            return self.initial_splits
        d = max(2, math.ceil(self.init_target ** (1.0 / ndim)))
        return d

    @classmethod
    def resolve_chunk_budget(cls, backend, override: Optional[int] = None) -> int:
        """The effective evaluate-chunk grain for batched execution.

        One policy shared by :func:`repro.api.integrate_many` and the
        service layer (the cache fingerprint hashes this value, so the
        two must never diverge): an explicit override wins, else the
        backend's preferred fused grain, else the reference budget.
        """
        if override is not None:
            return int(override)
        if backend.preferred_batch_chunk_budget is not None:
            return backend.preferred_batch_chunk_budget
        return cls.chunk_budget


class PaganiIntegrator:
    """Breadth-first adaptive cubature on the (virtual) GPU.

    Parameters
    ----------
    config:
        Algorithm knobs; tolerance values here are defaults that
        :meth:`integrate` keyword arguments override per call.
    device:
        Virtual device executing the kernels.  ``None`` builds a
        memory-scaled V100; pass ``VirtualDevice(DeviceSpec.v100())`` for
        paper-scale memory accounting.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import PaganiIntegrator
    >>> f = lambda x: np.exp(-np.sum(x**2, axis=1))
    >>> res = PaganiIntegrator().integrate(f, ndim=3, rel_tol=1e-6)
    >>> res.converged
    True
    """

    def __init__(
        self,
        config: Optional[PaganiConfig] = None,
        device: Optional[VirtualDevice] = None,
    ):
        self.config = config or PaganiConfig()
        self.config.validate()
        self.device = device if device is not None else VirtualDevice(DeviceSpec.scaled())
        #: resolved execution backend (raises early on unknown/unusable specs)
        self.backend = get_backend(self.config.backend)
        #: threshold-search traces of the last run (Fig. 3 reproduction)
        self.threshold_traces: list[ThresholdTrace] = []
        self._active_run: Optional["PaganiRun"] = None

    # ------------------------------------------------------------------
    def start_run(
        self,
        integrand: Callable[[np.ndarray], np.ndarray],
        ndim: int,
        bounds: Optional[Sequence[Sequence[float]]] = None,
        rel_tol: Optional[float] = None,
        abs_tol: Optional[float] = None,
        collect_trace: bool = True,
    ) -> "PaganiRun":
        """Begin a resumable integration run (see :class:`PaganiRun`).

        The returned run owns all loop state; drive it with
        :meth:`PaganiRun.step` (or the finer-grained phase methods used by
        the batch scheduler).  The integrator's ``threshold_traces`` alias
        the run's list, so Fig. 3 reproductions keep working unchanged.

        An integrator's virtual device hosts **one live run at a time**
        (starting a run resets the device clock and memory pool), so
        concurrent runs — a batch — need one integrator per member.
        """
        if self._active_run is not None and not self._active_run.finished:
            raise ConfigurationError(
                "this integrator already has a live run; its virtual "
                "device hosts one run at a time — build one "
                "PaganiIntegrator per concurrent run (or abandon() the "
                "previous run first)"
            )
        run = PaganiRun(
            self, integrand, ndim, bounds=bounds, rel_tol=rel_tol,
            abs_tol=abs_tol, collect_trace=collect_trace,
        )
        self._active_run = run
        self.threshold_traces = run.threshold_traces
        return run

    # ------------------------------------------------------------------
    def integrate(
        self,
        integrand: Callable[[np.ndarray], np.ndarray],
        ndim: int,
        bounds: Optional[Sequence[Sequence[float]]] = None,
        rel_tol: Optional[float] = None,
        abs_tol: Optional[float] = None,
        collect_trace: bool = True,
    ) -> IntegrationResult:
        """Integrate ``integrand`` over an axis-aligned box.

        Parameters
        ----------
        integrand:
            Batch callable ``(N, ndim) -> (N,)``.  Cost-model metadata is
            read from an optional ``flops_per_eval`` attribute.
        bounds:
            ``(ndim, 2)`` low/high pairs; defaults to the unit cube, the
            domain used throughout the paper's evaluation.
        rel_tol / abs_tol:
            Override the configured tolerances for this call.
        """
        run = self.start_run(
            integrand, ndim, bounds=bounds, rel_tol=rel_tol, abs_tol=abs_tol,
            collect_trace=collect_trace,
        )
        try:
            while not run.finished:
                run.step()
        except BaseException:
            # A raising integrand must not leave a live run holding the
            # integrator's device (start_run would refuse forever after).
            run.abandon()
            raise
        return run.result


class PaganiRun:
    """One PAGANI integration as a resumable breadth-first state machine.

    Each iteration of Algorithm 2 is split into two phases:

    :meth:`prepare_evaluation`
        Builds the ``EVALUATE`` chunk thunks for the current region list
        *without executing them* and returns the list.  The caller decides
        how to run them — :meth:`step` submits them straight to the run's
        backend; :class:`repro.batch.BatchScheduler` concatenates thunks
        from many runs into one fused backend submission per round.
    :meth:`complete_iteration`
        Consumes the evaluated arrays: two-level refinement,
        classification, global reduction, termination tests, threshold
        classification, finished accumulation and the filter/split kernels.

    The split changes nothing numerically: every thunk writes a disjoint
    output slice, so any execution schedule produces the same bits as the
    inline loop did.  When the run finishes (any terminal status), the
    region store is released immediately — device memory accounting drops
    to zero and the arrays become collectable even while other runs in a
    batch keep iterating.
    """

    def __init__(
        self,
        integrator: PaganiIntegrator,
        integrand: Callable[[np.ndarray], np.ndarray],
        ndim: int,
        bounds: Optional[Sequence[Sequence[float]]] = None,
        rel_tol: Optional[float] = None,
        abs_tol: Optional[float] = None,
        collect_trace: bool = True,
    ):
        cfg = integrator.config
        self.config = cfg
        self.device = integrator.device
        self.backend = integrator.backend
        self.integrand = integrand
        self.ndim = ndim
        self.collect_trace = collect_trace
        self.tau_rel = cfg.rel_tol if rel_tol is None else float(rel_tol)
        self.tau_abs = cfg.abs_tol if abs_tol is None else float(abs_tol)
        if not (0.0 < self.tau_rel < 1.0):
            raise ConfigurationError(
                f"rel_tol must be in (0, 1), got {self.tau_rel}"
            )
        if bounds is None:
            bounds = [(0.0, 1.0)] * ndim
        bounds_arr = np.asarray(bounds, dtype=np.float64)
        if bounds_arr.shape != (ndim, 2):
            raise ConfigurationError(
                f"bounds must have shape ({ndim}, 2), got {bounds_arr.shape}"
            )

        self.rule = get_rule(ndim)
        dev = self.device
        dev.reset_clock()
        dev.memory.reset()
        self.threshold_traces: List[ThresholdTrace] = []
        flops_per_eval = float(getattr(integrand, "flops_per_eval", 50.0))
        self._flops_region = self.rule.flops_per_region(flops_per_eval)

        self._t0 = time.perf_counter()
        self.store: Optional[RegionStore] = RegionStore.uniform_split(
            bounds_arr, cfg.splits_for(ndim), device=dev, backend=self.backend
        )

        self._v_finished = 0.0
        self._e_finished = 0.0
        self._e_finished_threshold = 0.0  # share of e_finished (Algorithm 3)
        self._v_prev_global: Optional[float] = None
        self.neval = 0
        self.total_regions = 0
        self.trace: List[IterationRecord] = []

        self._status = Status.MAX_ITERATIONS
        self._v_global = 0.0
        self._e_global = float("inf")
        self.iterations = 0
        self._it = 0

        self.finished = False
        self._result: Optional[IntegrationResult] = None
        self._ev = None  # pending EvaluationResult between the two phases
        self._m = 0
        #: per-run scratch for the evaluate sweep's chunk temporaries
        #: (engaged only on serial host backends — see evaluate_regions)
        self._scratch = SweepScratch()

    # ------------------------------------------------------------------
    @property
    def has_result(self) -> bool:
        """Whether the run produced a result (False while live/abandoned)."""
        return self._result is not None

    @property
    def result(self) -> IntegrationResult:
        """The final :class:`IntegrationResult` (raises until finished)."""
        if self._result is None:
            raise RuntimeError("PaganiRun has not finished yet")
        return self._result

    # ------------------------------------------------------------------
    def prepare_evaluation(self) -> List[Callable[[], None]]:
        """Build this iteration's ``EVALUATE`` chunk thunks (Algorithm 2
        line 10) without running them.

        Returns the thunk list; every thunk writes a disjoint slice of the
        run's pre-allocated output arrays, so the caller may execute them
        in any order or interleaved with other runs' thunks.  Call
        :meth:`complete_iteration` after all thunks have executed.
        """
        if self.finished:
            raise RuntimeError("run already finished")
        if self._ev is not None:
            raise RuntimeError(
                "prepare_evaluation called twice without complete_iteration"
            )
        store = self.store
        # The sweep writes straight into the store's estimate/error/axis
        # columns (they are rewritten wholesale every iteration anyway),
        # so steady-state iterations allocate no fresh output arrays; the
        # scratch does the same for the chunk temporaries.
        ev, tasks = evaluate_regions(
            self.rule,
            store.centers,
            store.halfwidths,
            self.integrand,
            error_model=self.config.error_model,
            chunk_budget=self.config.chunk_budget,
            out_estimate=store.estimate,
            out_error=store.error,
            out_axis=store.split_axis,
            backend=self.backend,
            scratch=self._scratch,
            defer=True,
        )
        # Bookkeeping only after evaluate_regions succeeded: if it raises
        # (output-array allocation), the run's counters are untouched and
        # preparation can simply be retried.
        self.iterations = self._it + 1
        self._m = store.size
        self.total_regions += self._m
        self._ev = ev
        return tasks

    # ------------------------------------------------------------------
    def complete_iteration(self) -> bool:
        """Finish the iteration whose evaluation thunks have executed.

        Performs two-level refinement, classification, the global
        reduction and termination tests, threshold classification,
        finished-contribution accumulation and the filter/split kernels —
        Algorithm 2 lines 11-23.  Returns ``True`` when the run reached a
        terminal status (the region store is released at that point).
        """
        if self._ev is None:
            raise RuntimeError("complete_iteration without prepare_evaluation")
        cfg = self.config
        dev = self.device
        bk = self.backend
        store = self.store
        tau_rel = self.tau_rel
        tau_abs = self.tau_abs
        it = self._it
        m = self._m
        ev = self._ev
        self._ev = None

        self.neval += ev.neval
        dev.charge_kernel(
            "evaluate", work_items=m, flops_per_item=self._flops_region
        )
        store.estimate = ev.estimate
        store.split_axis = ev.split_axis

        # --- TWO-LEVEL-ERROR (line 11) ----------------------------
        if cfg.two_level and store.parent_estimate is not None:
            errors = two_level_errors(
                ev.estimate, ev.error, store.parent_estimate[0::2]
            )
            dev.charge_kernel("two_level", work_items=m, bytes_per_item=40.0)
        else:
            errors = ev.error
        store.error = errors

        # --- REL-ERR-CLASSIFY (line 12) ---------------------------
        if cfg.relerr_filtering:
            active = rel_err_classify(
                ev.estimate, errors, tau_rel, device=dev,
                margin=cfg.relerr_margin,
                abs_share=cfg.relerr_margin * tau_abs / m,
            )
        else:
            active = bk.xp.ones(m, dtype=bool)

        # --- global reduction + termination (lines 13-16) ---------
        v_it = thrust.reduce_sum(dev, ev.estimate, name="thrust::reduce(V)", backend=bk)
        e_it = thrust.reduce_sum(dev, errors, name="thrust::reduce(E)", backend=bk)
        self._v_global = v_global = v_it + self._v_finished
        self._e_global = e_global = e_it + self._e_finished

        n_active = thrust.count_nonzero(dev, active, backend=bk)
        n_fin_rel = m - n_active

        if e_global <= tau_abs:
            self._status = Status.CONVERGED_ABS
        elif v_global != 0.0 and e_global <= tau_rel * abs(v_global):
            self._status = Status.CONVERGED_REL

        n_fin_threshold = 0
        if self._status in (Status.CONVERGED_ABS, Status.CONVERGED_REL):
            self._record(it, m, n_active, n_fin_rel, 0)
            return self._finish()

        if it == cfg.max_iterations - 1:
            self._status = Status.MAX_ITERATIONS
            self._record(it, m, n_active, n_fin_rel, 0)
            return self._finish()

        # --- THRESHOLD-CLASSIFY triggers (§3.5.2) ------------------
        trigger_mem = cfg.threshold_on_memory and not store.split_would_fit(
            n_active
        )
        trigger_conv = (
            cfg.threshold_on_convergence
            and self._v_prev_global is not None
            and v_global != 0.0
            and abs(v_global - self._v_prev_global) <= tau_rel * abs(v_global)
        )
        if (trigger_mem or trigger_conv) and n_active > 0:
            # Share of the tolerance reserved for threshold commitments
            # (rel-err commitments stay below relerr_margin·τ_rel·|v|).
            # Under memory pressure the paper prioritises survival:
            # "conserving memory is the only possibility for the
            # algorithm to continue" — so the memory trigger falls back
            # to the raw excess budget when the safe allowance would
            # block filtering.
            allowance = (
                (1.0 - cfg.relerr_margin) * tau_rel * abs(v_global)
                - self._e_finished_threshold
            )
            before = active
            active, ttrace = threshold_classify(
                active,
                errors,
                v_global,
                e_global,
                tau_rel,
                commit_allowance=allowance,
                p_max=cfg.p_max,
                p_max_step=cfg.p_max_step,
                p_max_cap=cfg.p_max_cap,
                mem_fraction=cfg.mem_fraction,
                max_direction_changes=cfg.max_direction_changes,
                device=dev,
                backend=bk,
            )
            self.threshold_traces.append(ttrace)
            if not ttrace.success and trigger_mem:
                active, ttrace = threshold_classify(
                    before,
                    errors,
                    v_global,
                    e_global,
                    tau_rel,
                    commit_allowance=None,
                    p_max=cfg.p_max,
                    p_max_step=cfg.p_max_step,
                    p_max_cap=cfg.p_max_cap,
                    mem_fraction=cfg.mem_fraction,
                    max_direction_changes=cfg.max_direction_changes,
                    device=dev,
                    backend=bk,
                )
                self.threshold_traces.append(ttrace)
            if ttrace.success:
                self._e_finished_threshold += float(
                    np.sum(errors[before & ~active])
                )
            new_active = thrust.count_nonzero(dev, active, backend=bk)
            n_fin_threshold = n_active - new_active
            n_active = new_active

        # --- accumulate finished contributions (lines 18-19) ------
        v_active = thrust.dot(dev, ev.estimate, active.astype(np.float64), backend=bk)
        e_active = thrust.dot(dev, errors, active.astype(np.float64), backend=bk)
        self._v_finished += v_it - v_active
        self._e_finished += e_it - e_active

        self._record(it, m, n_active, n_fin_rel, n_fin_threshold)

        if (
            self._e_finished > tau_rel * abs(v_global)
            and self._e_finished > tau_abs
            and v_global != 0.0
        ):
            # Committed error already exceeds the tolerance: convergence
            # has become impossible ("easily detectable", §3.5.3).  This
            # only happens when memory pressure forced an over-large
            # commitment, so report it as resource exhaustion.
            self._status = Status.MEMORY_EXHAUSTED
            return self._finish()

        if n_active == 0:
            # All regions committed.  The finished totals are final.
            self._v_global = self._v_finished
            self._e_global = self._e_finished
            if self._e_global <= tau_abs:
                self._status = Status.CONVERGED_ABS
            elif (
                self._v_global != 0.0
                and self._e_global <= tau_rel * abs(self._v_global)
            ):
                self._status = Status.CONVERGED_REL
            else:
                self._status = Status.NO_ACTIVE_REGIONS
            return self._finish()

        if not store.split_would_fit(n_active):
            # Filtering could not free enough memory: return the latest
            # estimates with the failure flag (§3.5.2).
            self._status = Status.MEMORY_EXHAUSTED
            return self._finish()

        # --- FILTER + SPLIT (lines 20-23) --------------------------
        store.filter(active)
        store.split()
        self._v_prev_global = v_global
        self._it += 1
        return False

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run one full iteration inline; returns ``True`` when finished."""
        tasks = self.prepare_evaluation()
        self.backend.run_chunks(tasks)
        return self.complete_iteration()

    # ------------------------------------------------------------------
    def cancel_evaluation(self) -> None:
        """Roll back a prepared-but-not-run evaluation phase.

        Used by the batch scheduler when another member's preparation
        fails before the fused submission: this run's thunks never
        executed, so undoing the bookkeeping returns it to a state where
        ``prepare_evaluation`` may be called again.
        """
        if self._ev is not None:
            self.total_regions -= self._m
            self.iterations = self._it
            self._ev = None

    # ------------------------------------------------------------------
    def abandon(self) -> None:
        """Release region memory without producing a result (cancellation)."""
        if not self.finished and self.store is not None:
            self.store.release()
            self.store = None
            self.finished = True
            self._ev = None

    # ------------------------------------------------------------------
    def _finish(self) -> bool:
        wall = time.perf_counter() - self._t0
        self.store.release()
        # Drop the array references as well: a finished batch member frees
        # its region memory immediately while other members keep iterating.
        self.store = None
        self.finished = True
        self._result = IntegrationResult(
            estimate=self._v_global,
            errorest=self._e_global,
            status=self._status,
            neval=self.neval,
            nregions=self.total_regions,
            iterations=self.iterations,
            method="pagani",
            sim_seconds=self.device.elapsed_seconds,
            wall_seconds=wall,
            trace=self.trace,
        )
        return True

    # ------------------------------------------------------------------
    def _record(
        self, it: int, m: int, n_active: int, n_fin_rel: int,
        n_fin_threshold: int,
    ) -> None:
        if not self.collect_trace:
            return
        self.trace.append(
            IterationRecord(
                iteration=it,
                n_regions=m,
                n_active=n_active,
                n_finished_relerr=n_fin_rel,
                n_finished_threshold=n_fin_threshold,
                estimate=self._v_global,
                errorest=self._e_global,
                finished_estimate=self._v_finished,
                finished_errorest=self._e_finished,
                neval=self.neval,
                sim_seconds=self.device.elapsed_seconds,
            )
        )
