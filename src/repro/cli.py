"""Command-line interface.

Examples
--------
Integrate a paper integrand with PAGANI::

    pagani-repro run --integrand 8D-f7 --rel-tol 1e-6

Compare all methods on one integrand::

    pagani-repro compare --integrand 5D-f4 --rel-tol 1e-5

Integrate a batch of independent integrands over one shared backend::

    pagani-repro batch --integrands 3D-f3,5D-f4,6D-genz-gaussian --backend threaded

Serve a jobs file through the integration service (priority queue +
result cache)::

    pagani-repro serve --jobs jobs.json --max-concurrent 4 --out results.json

Expose the service over HTTP with a durable (restart-surviving) result
cache — add ``--jobs`` to replay a file through the API and exit::

    pagani-repro serve --http 0.0.0.0:8053 --cache-dir /var/cache/pagani

List the available named integrands::

    pagani-repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.api import integrate, integrate_many, integrate_sweep
from repro.backends import (
    BackendUnavailableError,
    available_backends,
    backend_spec_help,
    get_backend,
    resolve_backend,
)
from repro.errors import ConfigurationError
from repro.integrands.catalog import FACTORIES as _FACTORIES
from repro.integrands.catalog import (
    expand_sweep,
    is_sweep_spec,
    named_integrand,
)
from repro.integrands.genz import GenzFamily

__all__ = ["main", "named_integrand"]


def _resolve_backend(spec: str):
    """Validate a --backend spec, falling back to numpy when unusable.

    Unknown names are hard errors (a typo should not silently change the
    run); *known but unavailable* backends — cupy on a CUDA-less host —
    degrade to the reference backend with a warning, so scripts written
    for GPU boxes still run everywhere.  ``"auto"`` is passed through as
    the spec string: the router resolves it per job, not the CLI.
    """
    if spec == "auto":
        return "auto"
    try:
        return get_backend(spec)
    except BackendUnavailableError as exc:
        print(f"warning: backend {spec!r} unavailable ({exc}); "
              "falling back to numpy", file=sys.stderr)
        return get_backend("numpy")


def _backend_name(backend) -> str:
    """Display name for a resolved backend (spec string or instance)."""
    return backend if isinstance(backend, str) else backend.name


def _print_result(res, truth: Optional[float]) -> None:
    print(res)
    if truth is not None and truth != 0.0:
        print(f"  true value     : {truth:.12g}")
        print(f"  true rel error : {abs(res.estimate - truth) / abs(truth):.3e}")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="pagani-repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="integrate with one method")
    run.add_argument(
        "--integrand", required=True,
        help="e.g. 8D-f7, 6D-genz-gaussian, semi_infinite(3D-f4, scale=2.0), "
        "or a sweep spec like sweep:gaussian_measure(2D-f4, sigma=0.5;1.0)",
    )
    run.add_argument("--method", default="pagani",
                     choices=["pagani", "cuhre", "two_phase", "qmc", "vegas"])
    run.add_argument("--rel-tol", type=float, default=1e-3)
    run.add_argument("--abs-tol", type=float, default=1e-20)
    run.add_argument("--max-eval", type=int, default=None)
    run.add_argument(
        "--backend", default="numpy",
        help="execution backend for PAGANI: one of "
        f"{backend_spec_help()} (default numpy), or auto (route to the "
        "cheapest adequate backend); unavailable backends fall back to "
        "numpy with a warning",
    )
    run.add_argument(
        "--escalate", nargs="?", const="default", default=None,
        metavar="POLICY",
        help="re-run failed PAGANI jobs down a baseline ladder; bare flag "
        "uses the stock two_phase>vegas>qmc ladder, or pass a descriptor "
        "like 'two_phase>vegas;watchdog=8;max_eval=500000' (pagani only)",
    )

    comp = sub.add_parser("compare", help="run all methods on one integrand")
    comp.add_argument("--integrand", required=True)
    comp.add_argument("--rel-tol", type=float, default=1e-3)
    comp.add_argument("--max-eval", type=int, default=50_000_000)
    comp.add_argument(
        "--backend", default="numpy",
        help=f"execution backend for the PAGANI rows ({backend_spec_help()}; "
        "baselines always run their own substrate)",
    )

    sub.add_parser("list", help="list named integrands")

    batch = sub.add_parser(
        "batch", help="integrate many integrands as one batched workload"
    )
    batch.add_argument(
        "--integrands", required=True,
        help="comma-separated specs, e.g. 3D-f3,5D-f4,6D-genz-gaussian; "
        "transform specs (semi_infinite(3D-f4, scale=2.0)) and sweep "
        "specs (sweep:gaussian_measure(2D-f4, sigma=0.5;1.0), expanded "
        "in place) are accepted too",
    )
    batch.add_argument("--rel-tol", type=float, default=1e-3)
    batch.add_argument("--abs-tol", type=float, default=1e-20)
    batch.add_argument(
        "--backend", default="numpy",
        help="shared execution backend for the whole batch: one of "
        f"{backend_spec_help()} (numpy keeps results bit-identical to "
        "sequential runs; threaded/process fuse the members' evaluation "
        "chunks for throughput; auto routes the batch by its summed "
        "first-sweep cost)",
    )
    batch.add_argument(
        "--chunk-budget", type=int, default=None,
        help="override the per-member chunk budget (floats per chunk)",
    )

    serve = sub.add_parser(
        "serve",
        help="run a jobs file through the integration service "
        "(priority queue + result cache)",
    )
    serve.add_argument(
        "--jobs", default=None,
        help="path to a jobs JSON file: a list (or {\"jobs\": [...]}) of "
        "{\"integrand\": \"5D-f4\", \"rel_tol\": 1e-4, \"priority\": 3, ...}; "
        "required unless --http starts a long-running server",
    )
    serve.add_argument(
        "--http", default=None, metavar="HOST:PORT",
        help="expose the service over HTTP/JSON at this address "
        "(port 0 picks a free port).  With --jobs the file is replayed "
        "through the HTTP API and the process exits; without it the "
        "server runs until interrupted",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persist results to a SQLite store under PATH (durable "
        "tier behind the LRU): duplicate jobs replay bit-for-bit even "
        "across server restarts",
    )
    serve.add_argument(
        "--max-queued", type=int, default=64,
        help="HTTP admission bound: POSTs are 429-rejected while this "
        "many jobs are already queued (default 64)",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=4,
        help="jobs admitted into the batch rotation at once (default 4)",
    )
    serve.add_argument(
        "--backend", default="numpy",
        help=f"execution backend spec for every job ({backend_spec_help()}; "
        "each shard resolves its own instance); auto routes each job "
        "adaptively and jobs may pin their own with a per-job "
        "\"backend\" field",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="independent worker rotations serving the shared queue "
        "(default 1); each shard pins its own backend instance",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=256,
        help="result-cache LRU capacity (default 256)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache (every job recomputes)",
    )
    serve.add_argument(
        "--escalate", nargs="?", const="default", default=None,
        metavar="POLICY",
        help="service-wide default baseline escalation for failed PAGANI "
        "jobs (bare flag = stock two_phase>vegas>qmc ladder, or a "
        "descriptor); per-job \"escalation\" fields override it",
    )
    serve.add_argument(
        "--out", default=None,
        help="write machine-readable per-job results JSON here",
    )

    args = parser.parse_args(argv)

    if args.command == "list":
        for key in sorted(_FACTORIES):
            print(f"  <n>D-{key}   e.g. 8D-{key}")
        print("  <n>D-genz-<family> with family in "
              f"{[f.value for f in GenzFamily]}")
        print(f"  backends available here: {available_backends()}")
        return 0

    if args.command == "batch":
        return _run_batch(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "run" and is_sweep_spec(args.integrand):
        return _run_sweep(args)
    try:
        integrand = named_integrand(args.integrand)
        backend = _resolve_backend(args.backend)
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.command == "run":
        try:
            res = integrate(
                integrand, integrand.ndim, rel_tol=args.rel_tol,
                abs_tol=args.abs_tol, method=args.method,
                max_eval=args.max_eval,
                backend=backend if args.method == "pagani" else None,
                escalation=args.escalate,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _print_result(res, integrand.reference)
        if res.escalated:
            ladder = " -> ".join(s.method for s in res.escalation)
            print(f"  escalated      : {ladder}")
        return 0 if res.converged else 1

    # compare
    for method in ("pagani", "two_phase", "cuhre", "qmc", "vegas"):
        res = integrate(
            integrand, integrand.ndim, rel_tol=args.rel_tol,
            method=method, max_eval=args.max_eval,
            backend=backend if method == "pagani" else None,
        )
        _print_result(res, integrand.reference)
    return 0


def _run_sweep(args) -> int:
    """``run`` with a ``sweep:`` spec: one fused parameter sweep."""
    if args.escalate is not None:
        print("error: --escalate applies to single runs, not sweeps",
              file=sys.stderr)
        return 2
    if args.method != "pagani":
        print("error: sweep specs run through PAGANI only", file=sys.stderr)
        return 2
    try:
        backend = _resolve_backend(args.backend)
        pairs = integrate_sweep(
            args.integrand, rel_tol=args.rel_tol, abs_tol=args.abs_tol,
            backend=backend,
        )
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    name_w = max(len(spec) for spec, _ in pairs)
    print(f"{'member'.ljust(name_w)}  {'status':<16} {'estimate':>16} "
          f"{'errorest':>10}")
    for spec, res in pairs:
        print(f"{spec.ljust(name_w)}  {res.status.value:<16} "
              f"{res.estimate:>16.9g} {res.errorest:>10.3g}")
    n_ok = sum(res.converged for _, res in pairs)
    print(f"\n{n_ok}/{len(pairs)} members converged on backend "
          f"{_backend_name(backend)!r}")
    return 0 if n_ok == len(pairs) else 1


def _split_specs(text: str):
    """Split a comma-separated spec list, respecting parens/brackets
    (transform specs hold commas), and expand ``sweep:`` members in
    place."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    if depth != 0:
        raise ValueError(f"unbalanced parentheses in spec list {text!r}")

    specs = []
    for part in parts:
        part = part.strip()
        if not part:
            continue
        if is_sweep_spec(part):
            specs.extend(expand_sweep(part))
        else:
            specs.append(part)
    return specs


def _run_batch(args) -> int:
    """The ``batch`` subcommand: one fused workload over a shared backend."""
    import time

    try:
        members = [named_integrand(spec) for spec in _split_specs(args.integrands)]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not members:
        print("error: --integrands named no integrands", file=sys.stderr)
        return 2
    try:
        backend = _resolve_backend(args.backend)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    t0 = time.perf_counter()
    results, stats = integrate_many(
        members,
        rel_tol=args.rel_tol,
        abs_tol=args.abs_tol,
        backend=backend,
        chunk_budget=args.chunk_budget,
        return_stats=True,
    )
    wall = time.perf_counter() - t0

    name_w = max(len(f.name) for f in members)
    print(f"{'integrand'.ljust(name_w)}  {'status':<16} {'estimate':>16} "
          f"{'errorest':>10} {'iters':>5}  true rel err")
    for f, res in zip(members, results):
        true_rel = res.true_rel_error()
        true_s = f"{true_rel:.3e}" if true_rel is not None else "-"
        print(f"{f.name.ljust(name_w)}  {res.status.value:<16} "
              f"{res.estimate:>16.9g} {res.errorest:>10.3g} "
              f"{res.iterations:>5}  {true_s}")
    n_ok = sum(r.converged for r in results)
    print(f"\n{n_ok}/{len(results)} converged in {wall:.2f} s on backend "
          f"{_backend_name(backend)!r} ({stats.rounds} rounds, "
          f"{stats.chunks_submitted} fused chunks, "
          f"{stats.fused_submissions} submissions)")
    return 0 if n_ok == len(results) else 1


def _load_jobs_file(path: str):
    """Parse a jobs JSON file into its raw entry list (or an error str)."""
    import json

    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        return None, f"cannot read jobs file: {exc}"
    entries = payload.get("jobs") if isinstance(payload, dict) else payload
    if not isinstance(entries, list) or not entries:
        return None, ("jobs file must hold a non-empty list of jobs "
                      "(or {\"jobs\": [...]})")
    return entries, None


def _run_serve(args) -> int:
    """The ``serve`` subcommand: a jobs file through the service layer."""
    import json

    from repro.api import serve_jobs
    from repro.service import IntegrationService, JobStatus, JobSpec

    if args.http is not None:
        return _run_serve_http(args)
    if args.jobs is None:
        print("error: --jobs is required (only --http can run jobless)",
              file=sys.stderr)
        return 2
    entries, err = _load_jobs_file(args.jobs)
    if err is not None:
        print(f"error: {err}", file=sys.stderr)
        return 2
    try:
        specs = [JobSpec.from_dict(dict(entry)) for entry in entries]
        backend = _resolve_backend(args.backend)
    except (ConfigurationError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    # With shards > 1 pass the *spec string* so every shard builds its
    # own backend instance (own pool); detect the unavailable-backend
    # fallback by name so a downgraded spec stays downgraded.
    requested = resolve_backend(args.backend).family
    backend_arg = (
        backend
        if args.shards == 1
        else (args.backend if _backend_name(backend) == requested else "numpy")
    )
    cache_arg = not args.no_cache
    if args.cache_dir is not None and not args.no_cache:
        from repro.service import TieredResultCache

        cache_arg = TieredResultCache(
            args.cache_dir, max_entries=args.cache_entries
        )
    service = IntegrationService(
        max_concurrent=args.max_concurrent, backend=backend_arg,
        cache=cache_arg, cache_entries=args.cache_entries,
        shards=args.shards, escalation=args.escalate,
    )
    try:
        handles = serve_jobs(specs, service=service)
        stats = service.stats()
    finally:
        service.shutdown(wait=True)
        if hasattr(cache_arg, "close"):
            cache_arg.close()

    rows = []
    for handle in handles:
        row = {
            "job_id": handle.job_id,
            "label": handle.spec.label or str(handle.spec.integrand),
            "integrand": str(handle.spec.integrand),
            "priority": handle.spec.priority,
            "rel_tol": handle.spec.rel_tol,
            "status": handle.status.value,
            "cache_hit": handle.cache_hit,
            "escalated": handle.stats.escalated,
            "completion_index": handle.stats.completion_index,
            "queue_seconds": handle.stats.queue_seconds,
            "total_seconds": handle.stats.total_seconds,
        }
        if handle.status is JobStatus.DONE:
            res = handle.result(timeout=0)
            row.update(
                result_status=res.status.value, estimate=res.estimate,
                errorest=res.errorest, iterations=res.iterations,
                neval=res.neval, converged=res.converged,
            )
        elif handle.status is JobStatus.FAILED:
            row["error"] = repr(handle.exception(timeout=0))
        rows.append(row)

    label_w = max(len(r["label"]) for r in rows)
    print(f"{'label'.ljust(label_w)}  prio  {'status':<10} {'estimate':>16} "
          f"{'errorest':>10}  hit  order")
    for r in rows:
        est = f"{r['estimate']:>16.9g}" if "estimate" in r else " " * 16
        err = f"{r['errorest']:>10.3g}" if "errorest" in r else " " * 10
        order = "-" if r["completion_index"] is None else r["completion_index"]
        print(f"{r['label'].ljust(label_w)}  {r['priority']:>4}  "
              f"{r['status']:<10} {est} {err}  {'y' if r['cache_hit'] else 'n':>3}"
              f"  {order:>5}")
    n_ok = sum(r.get("converged", False) for r in rows)
    cache = stats.get("cache") or {}
    print(f"\n{n_ok}/{len(rows)} converged on backend "
          f"{_backend_name(backend)!r} "
          f"x{stats['shards']} shard(s) ({stats['rounds']} rotation rounds, "
          f"{cache.get('hits', 0)} cache hits, "
          f"{stats['coalesced']} coalesced)")

    if args.out:
        out_payload = {
            "schema": 1,
            "jobs": rows,
            "service": stats,
        }
        with open(args.out, "w") as fh:
            json.dump(out_payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0 if n_ok == len(rows) else 1


def _http_json(method: str, url: str, data=None, timeout: float = 30.0):
    """One JSON request; returns (status_code, parsed_body)."""
    import json
    import urllib.error
    import urllib.request

    req = urllib.request.Request(
        url, method=method,
        data=None if data is None else json.dumps(data).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _run_serve_http(args) -> int:
    """``serve --http``: start the HTTP server (and optionally replay a
    jobs file through it, which makes the command exit deterministically
    — the shape CI and tests use)."""
    import json
    import time

    from repro.api import serve_http

    host, sep, port_s = args.http.rpartition(":")
    try:
        port = int(port_s)
        if not sep or not host:
            raise ValueError
    except ValueError:
        print(f"error: --http wants HOST:PORT, got {args.http!r}",
              file=sys.stderr)
        return 2
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    entries = None
    if args.jobs is not None:
        entries, err = _load_jobs_file(args.jobs)
        if err is not None:
            print(f"error: {err}", file=sys.stderr)
            return 2
    try:
        backend = _resolve_backend(args.backend)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    requested = resolve_backend(args.backend).family
    backend_arg = (
        backend
        if args.shards == 1
        else (args.backend if _backend_name(backend) == requested else "numpy")
    )

    server = serve_http(
        host=host, port=port, max_concurrent=args.max_concurrent,
        backend=backend_arg, shards=args.shards,
        cache_entries=args.cache_entries, cache_dir=args.cache_dir,
        max_queued=args.max_queued, escalation=args.escalate,
    )
    print(f"serving on {server.url} "
          f"(backend {_backend_name(backend)!r} x{args.shards} shard(s)"
          f"{', durable cache ' + args.cache_dir if args.cache_dir else ''})")
    if entries is None:
        # long-running mode: block until Ctrl-C
        server.serve_forever()
        return 0

    try:
        rows = []
        for entry in entries:
            code, body = _http_json("POST", server.url + "/v1/jobs", entry)
            if code != 202:
                print(f"error: POST /v1/jobs -> {code}: "
                      f"{body.get('error', body)}", file=sys.stderr)
                return 2
            rows.append({"job_id": body["job_id"], "request": dict(entry)})
        for row in rows:
            jid = row["job_id"]
            while True:
                code, body = _http_json(
                    "GET", f"{server.url}/v1/jobs/{jid}/result"
                )
                if code != 409:
                    break
                time.sleep(0.05)
            row["http_status"] = code
            row.update(body)
        code, metrics = _http_json("GET", server.url + "/metrics")
    finally:
        server.close()

    label_w = max(
        len(str(r["request"].get("label") or r["request"]["integrand"]))
        for r in rows
    )
    print(f"{'label'.ljust(label_w)}  {'status':<10} {'estimate':>16} "
          f"{'errorest':>10}  hit")
    n_ok = 0
    for r in rows:
        label = str(r["request"].get("label") or r["request"]["integrand"])
        res = r.get("result") or {}
        converged = bool(res.get("converged"))
        n_ok += converged
        est = f"{res['estimate']:>16.9g}" if "estimate" in res else " " * 16
        erro = f"{res['errorest']:>10.3g}" if "errorest" in res else " " * 10
        print(f"{label.ljust(label_w)}  {r.get('status', '?'):<10} "
              f"{est} {erro}  {'y' if r.get('cache_hit') else 'n':>3}")
    cache = metrics["service"].get("cache") or {}
    print(f"\n{n_ok}/{len(rows)} converged over HTTP "
          f"({cache.get('hits', 0)} cache hits, "
          f"{cache.get('durable_hits', 0)} from the durable store)")

    if args.out:
        out_payload = {"schema": 1, "jobs": rows, "metrics": metrics}
        with open(args.out, "w") as fh:
            json.dump(out_payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0 if n_ok == len(rows) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
