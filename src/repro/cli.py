"""Command-line interface.

Examples
--------
Integrate a paper integrand with PAGANI::

    pagani-repro run --integrand 8D-f7 --rel-tol 1e-6

Compare all methods on one integrand::

    pagani-repro compare --integrand 5D-f4 --rel-tol 1e-5

Integrate a batch of independent integrands over one shared backend::

    pagani-repro batch --integrands 3D-f3,5D-f4,6D-genz-gaussian --backend threaded

Serve a jobs file through the integration service (priority queue +
result cache)::

    pagani-repro serve --jobs jobs.json --max-concurrent 4 --out results.json

List the available named integrands::

    pagani-repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.api import integrate, integrate_many
from repro.backends import BackendUnavailableError, available_backends, get_backend
from repro.errors import ConfigurationError
from repro.integrands.catalog import FACTORIES as _FACTORIES
from repro.integrands.catalog import named_integrand
from repro.integrands.genz import GenzFamily

__all__ = ["main", "named_integrand"]


def _resolve_backend(spec: str):
    """Validate a --backend spec, falling back to numpy when unusable.

    Unknown names are hard errors (a typo should not silently change the
    run); *known but unavailable* backends — cupy on a CUDA-less host —
    degrade to the reference backend with a warning, so scripts written
    for GPU boxes still run everywhere.
    """
    try:
        return get_backend(spec)
    except BackendUnavailableError as exc:
        print(f"warning: backend {spec!r} unavailable ({exc}); "
              "falling back to numpy", file=sys.stderr)
        return get_backend("numpy")


def _print_result(res, truth: Optional[float]) -> None:
    print(res)
    if truth is not None and truth != 0.0:
        print(f"  true value     : {truth:.12g}")
        print(f"  true rel error : {abs(res.estimate - truth) / abs(truth):.3e}")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="pagani-repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="integrate with one method")
    run.add_argument("--integrand", required=True, help="e.g. 8D-f7, 6D-genz-gaussian")
    run.add_argument("--method", default="pagani",
                     choices=["pagani", "cuhre", "two_phase", "qmc"])
    run.add_argument("--rel-tol", type=float, default=1e-3)
    run.add_argument("--abs-tol", type=float, default=1e-20)
    run.add_argument("--max-eval", type=int, default=None)
    run.add_argument(
        "--backend", default="numpy",
        help="execution backend for PAGANI: numpy (default), threaded, "
        "threaded:<N>, process, process:<N>, cupy; unavailable backends "
        "fall back to numpy with a warning",
    )

    comp = sub.add_parser("compare", help="run all methods on one integrand")
    comp.add_argument("--integrand", required=True)
    comp.add_argument("--rel-tol", type=float, default=1e-3)
    comp.add_argument("--max-eval", type=int, default=50_000_000)
    comp.add_argument(
        "--backend", default="numpy",
        help="execution backend for the PAGANI rows (baselines always "
        "run their own substrate)",
    )

    sub.add_parser("list", help="list named integrands")

    batch = sub.add_parser(
        "batch", help="integrate many integrands as one batched workload"
    )
    batch.add_argument(
        "--integrands", required=True,
        help="comma-separated specs, e.g. 3D-f3,5D-f4,6D-genz-gaussian",
    )
    batch.add_argument("--rel-tol", type=float, default=1e-3)
    batch.add_argument("--abs-tol", type=float, default=1e-20)
    batch.add_argument(
        "--backend", default="numpy",
        help="shared execution backend for the whole batch (numpy keeps "
        "results bit-identical to sequential runs; threaded/process fuse "
        "the members' evaluation chunks for throughput)",
    )
    batch.add_argument(
        "--chunk-budget", type=int, default=None,
        help="override the per-member chunk budget (floats per chunk)",
    )

    serve = sub.add_parser(
        "serve",
        help="run a jobs file through the integration service "
        "(priority queue + result cache)",
    )
    serve.add_argument(
        "--jobs", required=True,
        help="path to a jobs JSON file: a list (or {\"jobs\": [...]}) of "
        "{\"integrand\": \"5D-f4\", \"rel_tol\": 1e-4, \"priority\": 3, ...}",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=4,
        help="jobs admitted into the batch rotation at once (default 4)",
    )
    serve.add_argument(
        "--backend", default="numpy",
        help="execution backend spec for every job (each shard resolves "
        "its own instance)",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="independent worker rotations serving the shared queue "
        "(default 1); each shard pins its own backend instance",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=256,
        help="result-cache LRU capacity (default 256)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache (every job recomputes)",
    )
    serve.add_argument(
        "--out", default=None,
        help="write machine-readable per-job results JSON here",
    )

    args = parser.parse_args(argv)

    if args.command == "list":
        for key in sorted(_FACTORIES):
            print(f"  <n>D-{key}   e.g. 8D-{key}")
        print("  <n>D-genz-<family> with family in "
              f"{[f.value for f in GenzFamily]}")
        print(f"  backends available here: {available_backends()}")
        return 0

    if args.command == "batch":
        return _run_batch(args)

    if args.command == "serve":
        return _run_serve(args)

    integrand = named_integrand(args.integrand)
    try:
        backend = _resolve_backend(args.backend)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.command == "run":
        res = integrate(
            integrand, integrand.ndim, rel_tol=args.rel_tol,
            abs_tol=args.abs_tol, method=args.method, max_eval=args.max_eval,
            backend=backend if args.method == "pagani" else None,
        )
        _print_result(res, integrand.reference)
        return 0 if res.converged else 1

    # compare
    for method in ("pagani", "two_phase", "cuhre", "qmc"):
        res = integrate(
            integrand, integrand.ndim, rel_tol=args.rel_tol,
            method=method, max_eval=args.max_eval,
            backend=backend if method == "pagani" else None,
        )
        _print_result(res, integrand.reference)
    return 0


def _run_batch(args) -> int:
    """The ``batch`` subcommand: one fused workload over a shared backend."""
    import time

    try:
        members = [
            named_integrand(spec.strip())
            for spec in args.integrands.split(",")
            if spec.strip()
        ]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not members:
        print("error: --integrands named no integrands", file=sys.stderr)
        return 2
    try:
        backend = _resolve_backend(args.backend)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    t0 = time.perf_counter()
    results, stats = integrate_many(
        members,
        rel_tol=args.rel_tol,
        abs_tol=args.abs_tol,
        backend=backend,
        chunk_budget=args.chunk_budget,
        return_stats=True,
    )
    wall = time.perf_counter() - t0

    name_w = max(len(f.name) for f in members)
    print(f"{'integrand'.ljust(name_w)}  {'status':<16} {'estimate':>16} "
          f"{'errorest':>10} {'iters':>5}  true rel err")
    for f, res in zip(members, results):
        true_rel = res.true_rel_error()
        true_s = f"{true_rel:.3e}" if true_rel is not None else "-"
        print(f"{f.name.ljust(name_w)}  {res.status.value:<16} "
              f"{res.estimate:>16.9g} {res.errorest:>10.3g} "
              f"{res.iterations:>5}  {true_s}")
    n_ok = sum(r.converged for r in results)
    print(f"\n{n_ok}/{len(results)} converged in {wall:.2f} s on backend "
          f"{backend.name!r} ({stats.rounds} rounds, "
          f"{stats.chunks_submitted} fused chunks, "
          f"{stats.fused_submissions} submissions)")
    return 0 if n_ok == len(results) else 1


def _run_serve(args) -> int:
    """The ``serve`` subcommand: a jobs file through the service layer."""
    import json

    from repro.api import serve_jobs
    from repro.service import IntegrationService, JobStatus, JobSpec

    try:
        with open(args.jobs) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read jobs file: {exc}", file=sys.stderr)
        return 2
    entries = payload.get("jobs") if isinstance(payload, dict) else payload
    if not isinstance(entries, list) or not entries:
        print("error: jobs file must hold a non-empty list of jobs "
              "(or {\"jobs\": [...]})", file=sys.stderr)
        return 2
    try:
        specs = [JobSpec.from_dict(dict(entry)) for entry in entries]
        backend = _resolve_backend(args.backend)
    except (ConfigurationError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    # With shards > 1 pass the *spec string* so every shard builds its
    # own backend instance (own pool); detect the unavailable-backend
    # fallback by name so a downgraded spec stays downgraded.
    requested = args.backend.partition(":")[0]
    backend_arg = (
        backend
        if args.shards == 1
        else (args.backend if backend.name == requested else "numpy")
    )
    service = IntegrationService(
        max_concurrent=args.max_concurrent, backend=backend_arg,
        cache=not args.no_cache, cache_entries=args.cache_entries,
        shards=args.shards,
    )
    try:
        handles = serve_jobs(specs, service=service)
        stats = service.stats()
    finally:
        service.shutdown(wait=True)

    rows = []
    for handle in handles:
        row = {
            "job_id": handle.job_id,
            "label": handle.spec.label or str(handle.spec.integrand),
            "integrand": str(handle.spec.integrand),
            "priority": handle.spec.priority,
            "rel_tol": handle.spec.rel_tol,
            "status": handle.status.value,
            "cache_hit": handle.cache_hit,
            "completion_index": handle.stats.completion_index,
            "queue_seconds": handle.stats.queue_seconds,
            "total_seconds": handle.stats.total_seconds,
        }
        if handle.status is JobStatus.DONE:
            res = handle.result(timeout=0)
            row.update(
                result_status=res.status.value, estimate=res.estimate,
                errorest=res.errorest, iterations=res.iterations,
                neval=res.neval, converged=res.converged,
            )
        elif handle.status is JobStatus.FAILED:
            row["error"] = repr(handle.exception(timeout=0))
        rows.append(row)

    label_w = max(len(r["label"]) for r in rows)
    print(f"{'label'.ljust(label_w)}  prio  {'status':<10} {'estimate':>16} "
          f"{'errorest':>10}  hit  order")
    for r in rows:
        est = f"{r['estimate']:>16.9g}" if "estimate" in r else " " * 16
        err = f"{r['errorest']:>10.3g}" if "errorest" in r else " " * 10
        order = "-" if r["completion_index"] is None else r["completion_index"]
        print(f"{r['label'].ljust(label_w)}  {r['priority']:>4}  "
              f"{r['status']:<10} {est} {err}  {'y' if r['cache_hit'] else 'n':>3}"
              f"  {order:>5}")
    n_ok = sum(r.get("converged", False) for r in rows)
    cache = stats.get("cache") or {}
    print(f"\n{n_ok}/{len(rows)} converged on backend {backend.name!r} "
          f"x{stats['shards']} shard(s) ({stats['rounds']} rotation rounds, "
          f"{cache.get('hits', 0)} cache hits, "
          f"{stats['coalesced']} coalesced)")

    if args.out:
        out_payload = {
            "schema": 1,
            "jobs": rows,
            "service": stats,
        }
        with open(args.out, "w") as fh:
            json.dump(out_payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0 if n_ok == len(rows) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
