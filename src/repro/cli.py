"""Command-line interface.

Examples
--------
Integrate a paper integrand with PAGANI::

    pagani-repro run --integrand 8D-f7 --rel-tol 1e-6

Compare all methods on one integrand::

    pagani-repro compare --integrand 5D-f4 --rel-tol 1e-5

Integrate a batch of independent integrands over one shared backend::

    pagani-repro batch --integrands 3D-f3,5D-f4,6D-genz-gaussian --backend threaded

List the available named integrands::

    pagani-repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional

from repro.api import integrate, integrate_many
from repro.backends import BackendUnavailableError, available_backends, get_backend
from repro.errors import ConfigurationError
from repro.integrands.base import Integrand
from repro.integrands.genz import GenzFamily, make_genz
from repro.integrands.paper import (
    f1_oscillatory,
    f2_product_peak,
    f3_corner_peak,
    f4_gaussian,
    f5_c0,
    f6_discontinuous,
    f7_box11,
    f8_box15,
)

_FACTORIES = {
    "f1": f1_oscillatory,
    "f2": f2_product_peak,
    "f3": f3_corner_peak,
    "f4": f4_gaussian,
    "f5": f5_c0,
    "f6": f6_discontinuous,
    "f7": f7_box11,
    "f8": f8_box15,
}


def named_integrand(spec: str) -> Integrand:
    """Resolve names like ``8D-f7``, ``5D-f4`` or ``6D-genz-gaussian``."""
    parts = spec.lower().split("-")
    if len(parts) < 2 or not parts[0].endswith("d"):
        raise ValueError(f"cannot parse integrand spec {spec!r} (want e.g. '8D-f7')")
    ndim = int(parts[0][:-1])
    key = parts[1]
    if key == "genz":
        if len(parts) != 3:
            raise ValueError("genz spec is '<n>D-genz-<family>'")
        return make_genz(GenzFamily(parts[2]), ndim)
    if key not in _FACTORIES:
        raise ValueError(f"unknown integrand {key!r}; options: {sorted(_FACTORIES)}")
    return _FACTORIES[key](ndim)


def _resolve_backend(spec: str):
    """Validate a --backend spec, falling back to numpy when unusable.

    Unknown names are hard errors (a typo should not silently change the
    run); *known but unavailable* backends — cupy on a CUDA-less host —
    degrade to the reference backend with a warning, so scripts written
    for GPU boxes still run everywhere.
    """
    try:
        return get_backend(spec)
    except BackendUnavailableError as exc:
        print(f"warning: backend {spec!r} unavailable ({exc}); "
              "falling back to numpy", file=sys.stderr)
        return get_backend("numpy")


def _print_result(res, truth: Optional[float]) -> None:
    print(res)
    if truth is not None and truth != 0.0:
        print(f"  true value     : {truth:.12g}")
        print(f"  true rel error : {abs(res.estimate - truth) / abs(truth):.3e}")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="pagani-repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="integrate with one method")
    run.add_argument("--integrand", required=True, help="e.g. 8D-f7, 6D-genz-gaussian")
    run.add_argument("--method", default="pagani",
                     choices=["pagani", "cuhre", "two_phase", "qmc"])
    run.add_argument("--rel-tol", type=float, default=1e-3)
    run.add_argument("--abs-tol", type=float, default=1e-20)
    run.add_argument("--max-eval", type=int, default=None)
    run.add_argument(
        "--backend", default="numpy",
        help="execution backend for PAGANI: numpy (default), threaded, "
        "threaded:<N>, cupy; unavailable backends fall back to numpy "
        "with a warning",
    )

    comp = sub.add_parser("compare", help="run all methods on one integrand")
    comp.add_argument("--integrand", required=True)
    comp.add_argument("--rel-tol", type=float, default=1e-3)
    comp.add_argument("--max-eval", type=int, default=50_000_000)
    comp.add_argument(
        "--backend", default="numpy",
        help="execution backend for the PAGANI rows (baselines always "
        "run their own substrate)",
    )

    sub.add_parser("list", help="list named integrands")

    batch = sub.add_parser(
        "batch", help="integrate many integrands as one batched workload"
    )
    batch.add_argument(
        "--integrands", required=True,
        help="comma-separated specs, e.g. 3D-f3,5D-f4,6D-genz-gaussian",
    )
    batch.add_argument("--rel-tol", type=float, default=1e-3)
    batch.add_argument("--abs-tol", type=float, default=1e-20)
    batch.add_argument(
        "--backend", default="numpy",
        help="shared execution backend for the whole batch (numpy keeps "
        "results bit-identical to sequential runs; threaded fuses the "
        "members' evaluation chunks for throughput)",
    )
    batch.add_argument(
        "--chunk-budget", type=int, default=None,
        help="override the per-member chunk budget (floats per chunk)",
    )

    args = parser.parse_args(argv)

    if args.command == "list":
        for key in sorted(_FACTORIES):
            print(f"  <n>D-{key}   e.g. 8D-{key}")
        print("  <n>D-genz-<family> with family in "
              f"{[f.value for f in GenzFamily]}")
        print(f"  backends available here: {available_backends()}")
        return 0

    if args.command == "batch":
        return _run_batch(args)

    integrand = named_integrand(args.integrand)
    try:
        backend = _resolve_backend(args.backend)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.command == "run":
        res = integrate(
            integrand, integrand.ndim, rel_tol=args.rel_tol,
            abs_tol=args.abs_tol, method=args.method, max_eval=args.max_eval,
            backend=backend if args.method == "pagani" else None,
        )
        _print_result(res, integrand.reference)
        return 0 if res.converged else 1

    # compare
    for method in ("pagani", "two_phase", "cuhre", "qmc"):
        res = integrate(
            integrand, integrand.ndim, rel_tol=args.rel_tol,
            method=method, max_eval=args.max_eval,
            backend=backend if method == "pagani" else None,
        )
        _print_result(res, integrand.reference)
    return 0


def _run_batch(args) -> int:
    """The ``batch`` subcommand: one fused workload over a shared backend."""
    import time

    try:
        members = [
            named_integrand(spec.strip())
            for spec in args.integrands.split(",")
            if spec.strip()
        ]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not members:
        print("error: --integrands named no integrands", file=sys.stderr)
        return 2
    try:
        backend = _resolve_backend(args.backend)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    t0 = time.perf_counter()
    results, stats = integrate_many(
        members,
        rel_tol=args.rel_tol,
        abs_tol=args.abs_tol,
        backend=backend,
        chunk_budget=args.chunk_budget,
        return_stats=True,
    )
    wall = time.perf_counter() - t0

    name_w = max(len(f.name) for f in members)
    print(f"{'integrand'.ljust(name_w)}  {'status':<16} {'estimate':>16} "
          f"{'errorest':>10} {'iters':>5}  true rel err")
    for f, res in zip(members, results):
        true_rel = res.true_rel_error()
        true_s = f"{true_rel:.3e}" if true_rel is not None else "-"
        print(f"{f.name.ljust(name_w)}  {res.status.value:<16} "
              f"{res.estimate:>16.9g} {res.errorest:>10.3g} "
              f"{res.iterations:>5}  {true_s}")
    n_ok = sum(r.converged for r in results)
    print(f"\n{n_ok}/{len(results)} converged in {wall:.2f} s on backend "
          f"{backend.name!r} ({stats.rounds} rounds, "
          f"{stats.chunks_submitted} fused chunks, "
          f"{stats.fused_submissions} submissions)")
    return 0 if n_ok == len(results) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
