"""Box-integral reference values by density convolution.

A *box integral* is ``B_n(s) = ∫_{[0,1]^n} (Σ x_i²)^{s/2} dx`` — the paper's
f7 (s = 22) and f8 (s = 15) in eight dimensions.  For even ``s`` the value
is an exact rational number (multinomial expansion, computed here with
Python fractions).  For odd ``s`` no simple closed form exists, so we build
the value semi-analytically:

1.  For one coordinate, ``u = x²`` has density ``1/(2√u)`` on (0, 1].
2.  The 2-fold sum ``S₂ = x₁² + x₂²`` has the **analytic** density::

        h₂(t) = π/4                                     0 <= t <= 1
        h₂(t) = (arcsin √(1/t) − arcsin √(1 − 1/t)) / 2  1 <  t <= 2

    (the arcsine integral ∫ du/√(u(t−u)) evaluated piecewise).  h₂ has a
    square-root cusp at t = 1 — handled below by substitution.
3.  ``h₄ = h₂ * h₂`` (density of 4 coordinates) is evaluated on demand by
    panel Gauss–Legendre quadrature with breakpoints at the kink locations
    and ``u = c ± σ²`` substitutions that neutralise the cusp.
4.  Any expectation over 8 coordinates is a double integral
    ``E[g(S₈)] = ∬ h₄(u) h₄(v) g(u+v) du dv`` computed on a cached tensor
    grid of panel-Gauss nodes (again with sqrt substitutions at the integer
    knots where convolution powers of the cusp live).

Accuracy is validated in the test suite by comparing the *same pipeline*
against the exact rational values of even moments (including f7's s = 22)
— agreement there certifies the f8 value it produces.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import pi, sqrt
from typing import Callable, Iterable, List, Tuple

import numpy as np

__all__ = ["box_moment_exact", "box_integral", "h2_density", "integrate_panels"]


# ---------------------------------------------------------------------------
# Exact even moments via dynamic programming over dimensions
# ---------------------------------------------------------------------------
def box_moment_exact(ndim: int, k: int) -> Fraction:
    """Exact ``E[(Σ_{i<ndim} x_i²)^k]`` over the unit cube, as a Fraction.

    Uses the binomial recursion ``E[S_d^j] = Σ_r C(j,r) E[S_{d-1}^{j-r}] m_r``
    with the single-coordinate moments ``m_r = E[x^{2r}] = 1/(2r+1)``.
    Exact rational arithmetic sidesteps the heavy cancellation a floating
    multinomial expansion would suffer.
    """
    if ndim < 1 or k < 0:
        raise ValueError("need ndim >= 1 and k >= 0")
    from math import comb

    m = [Fraction(1, 2 * r + 1) for r in range(k + 1)]
    prev = m[: k + 1]  # E[S_1^j] = m_j
    for _ in range(1, ndim):
        cur = []
        for j in range(k + 1):
            acc = Fraction(0)
            for r in range(j + 1):
                acc += comb(j, r) * prev[j - r] * m[r]
            cur.append(acc)
        prev = cur
    return prev[k]


# ---------------------------------------------------------------------------
# The analytic 2-fold density
# ---------------------------------------------------------------------------
def h2_density(t: np.ndarray) -> np.ndarray:
    """Density of ``x₁² + x₂²`` for independent uniforms (vectorised)."""
    t = np.asarray(t, dtype=np.float64)
    out = np.zeros_like(t)
    low = (t >= 0.0) & (t <= 1.0)
    out[low] = pi / 4.0
    mid = (t > 1.0) & (t <= 2.0)
    tm = t[mid]
    out[mid] = 0.5 * (np.arcsin(np.sqrt(1.0 / tm)) - np.arcsin(np.sqrt(1.0 - 1.0 / tm)))
    return out


# ---------------------------------------------------------------------------
# Panel Gauss–Legendre with sqrt-singularity substitutions
# ---------------------------------------------------------------------------
@lru_cache(maxsize=8)
def _gauss(n: int) -> Tuple[np.ndarray, np.ndarray]:
    x, w = np.polynomial.legendre.leggauss(n)
    return x, w


def _panel_nodes(
    a: float, b: float, singular_left: bool, singular_right: bool, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Gauss nodes/weights on [a, b], substituting at sqrt-cusp endpoints.

    ``u = a + σ²`` (resp. ``b − σ²``) turns half-integer powers of the
    distance to the endpoint into polynomials in σ, restoring spectral
    Gauss convergence.  If both endpoints are cusps the panel is split at
    its midpoint first.
    """
    if b <= a:
        return np.empty(0), np.empty(0)
    if singular_left and singular_right:
        mid = 0.5 * (a + b)
        x1, w1 = _panel_nodes(a, mid, True, False, n)
        x2, w2 = _panel_nodes(mid, b, False, True, n)
        return np.concatenate([x1, x2]), np.concatenate([w1, w2])
    x, w = _gauss(n)
    if singular_left:
        smax = sqrt(b - a)
        sig = 0.5 * smax * (x + 1.0)
        nodes = a + sig**2
        weights = w * (0.5 * smax) * 2.0 * sig
        return nodes, weights
    if singular_right:
        smax = sqrt(b - a)
        sig = 0.5 * smax * (x + 1.0)
        nodes = b - sig**2
        weights = w * (0.5 * smax) * 2.0 * sig
        return nodes, weights
    half = 0.5 * (b - a)
    return a + half * (x + 1.0), w * half


def integrate_panels(
    f: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
    breakpoints: Iterable[float] = (),
    sqrt_singularities: Iterable[float] = (),
    n_nodes: int = 48,
) -> float:
    """∫_a^b f with panels at breakpoints and cusp-aware endpoint mapping."""
    nodes, weights = panel_grid(a, b, breakpoints, sqrt_singularities, n_nodes)
    if nodes.size == 0:
        return 0.0
    return float(np.dot(weights, f(nodes)))


def panel_grid(
    a: float,
    b: float,
    breakpoints: Iterable[float] = (),
    sqrt_singularities: Iterable[float] = (),
    n_nodes: int = 48,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the (nodes, weights) grid used by :func:`integrate_panels`."""
    if b <= a:
        return np.empty(0), np.empty(0)
    eps = 1e-14 * max(1.0, abs(a), abs(b))
    pts: List[float] = [a, b]
    for p in breakpoints:
        if a + eps < p < b - eps:
            pts.append(float(p))
    pts = sorted(set(pts))
    sing = sorted(set(float(s) for s in sqrt_singularities))

    def is_sing(x: float) -> bool:
        return any(abs(x - s) <= eps for s in sing)

    all_nodes: List[np.ndarray] = []
    all_weights: List[np.ndarray] = []
    for lo, hi in zip(pts[:-1], pts[1:]):
        nodes, weights = _panel_nodes(lo, hi, is_sing(lo), is_sing(hi), n_nodes)
        all_nodes.append(nodes)
        all_weights.append(weights)
    return np.concatenate(all_nodes), np.concatenate(all_weights)


# ---------------------------------------------------------------------------
# Densities of 4-fold sums and 8-dimensional expectations
# ---------------------------------------------------------------------------
def h4_density(v: float, n_nodes: int = 48) -> float:
    """Density of ``x₁²+…+x₄²`` at ``v`` via the convolution of two h₂."""
    lo = max(0.0, v - 2.0)
    hi = min(2.0, v)
    if hi <= lo:
        return 0.0
    # kinks of h2(w) at w=1 and of h2(v-w) at w=v-1
    return integrate_panels(
        lambda w: h2_density(w) * h2_density(v - w),
        lo,
        hi,
        breakpoints=[1.0, v - 1.0],
        sqrt_singularities=[1.0, v - 1.0],
        n_nodes=n_nodes,
    )


@lru_cache(maxsize=4)
def _grid8(n_nodes: int = 48) -> Tuple[np.ndarray, np.ndarray]:
    """Cached 1-D grid over [0, 4] with h₄ folded into the weights.

    The 8-fold expectation is a tensor double integral over this grid:
    ``E[g(S₈)] = Σ_i Σ_j W_i W_j g(u_i + u_j)`` with ``W = weight · h₄``.
    Convolution powers of the h₂ cusp live at the integer knots, so every
    integer is both a breakpoint and a sqrt-substitution site.
    """
    knots = [0.0, 1.0, 2.0, 3.0, 4.0]
    nodes, weights = panel_grid(0.0, 4.0, knots, knots, n_nodes)
    h4 = np.array([h4_density(u, n_nodes=n_nodes) for u in nodes])
    return nodes, weights * h4


def expect_s8(g: Callable[[np.ndarray], np.ndarray], n_nodes: int = 48) -> float:
    """``E[g(x₁²+…+x₈²)]`` over the unit cube."""
    nodes, wh = _grid8(n_nodes)
    total = nodes[:, None] + nodes[None, :]
    return float(wh @ g(total) @ wh)


def expect_s4(g: Callable[[np.ndarray], np.ndarray], n_nodes: int = 48) -> float:
    """``E[g(x₁²+…+x₄²)]`` via a tensor double integral over h₂ grids."""
    knots = [0.0, 1.0, 2.0]
    nodes, weights = panel_grid(0.0, 2.0, knots, knots, n_nodes)
    wh = weights * h2_density(nodes)
    total = nodes[:, None] + nodes[None, :]
    return float(wh @ g(total) @ wh)


def expect_s2(g: Callable[[np.ndarray], np.ndarray], n_nodes: int = 48) -> float:
    """``E[g(x₁²+x₂²)]`` directly against the analytic h₂."""
    knots = [0.0, 1.0, 2.0]
    nodes, weights = panel_grid(0.0, 2.0, knots, knots, n_nodes)
    return float(np.dot(weights * h2_density(nodes), g(nodes)))


def box_integral(ndim: int, s: float, n_nodes: int = 48) -> float:
    """``B_ndim(s) = E[(Σ x_i²)^{s/2}]`` for ndim in {2, 4, 8}.

    Even ``s`` values route through the exact rational moments; odd (or
    non-integer) ``s`` uses the convolution pipeline.
    """
    if s < 0:
        raise ValueError("only non-negative s supported")
    if ndim not in (2, 4, 8):
        raise ValueError("convolution pipeline supports ndim in {2, 4, 8}")
    if float(s).is_integer() and int(s) % 2 == 0:
        return float(box_moment_exact(ndim, int(s) // 2))
    g = lambda t: np.power(t, s / 2.0)
    if ndim == 2:
        return expect_s2(g, n_nodes)
    if ndim == 4:
        return expect_s4(g, n_nodes)
    return expect_s8(g, n_nodes)
