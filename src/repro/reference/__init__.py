"""Semi-analytic reference values (box integrals and helpers).

The accuracy experiments (Fig. 4) need *true* integral values.  Most of the
paper's integrands have closed forms; the exception is the odd-power box
integral f8 = (Σxᵢ²)^{15/2} in 8 dimensions, for which this package builds a
reference by density convolution — see :mod:`~repro.reference.boxint`.
"""

from repro.reference.boxint import (
    box_moment_exact,
    box_integral,
    h2_density,
    integrate_panels,
)

__all__ = ["box_moment_exact", "box_integral", "h2_density", "integrate_panels"]
