"""Baseline escalation: degrade gracefully when PAGANI cannot finish.

The paper's §3.5 failure story ends with an honest flag: in high
dimensions the region list outgrows device memory and the run returns
``MEMORY_EXHAUSTED``.  A production service should do better than stop
there — this module re-runs the failed job down a configured *ladder* of
baseline integrators (default ``two_phase → vegas → qmc``, the
last-resort rungs below every array backend in the routing hierarchy —
see :data:`repro.backends.routing.BASELINE_LAST_RESORT`), stopping at
the first rung that converges.

Honesty contract
----------------
An escalated result is **never relabeled** as a plain converged PAGANI
run.  The returned :class:`~repro.core.result.IntegrationResult` keeps
the final stage's own ``method`` and ``status``, and carries the full
per-stage history — original PAGANI attempt first — in its
``escalation`` field (:class:`~repro.core.result.EscalationStage`).
That provenance travels with the result through the in-memory cache,
the durable store and the HTTP payloads, and escalated jobs fingerprint
distinctly from native ones (the policy descriptor enters the cache
fingerprint), so a cache can never serve an escalated estimate to a
caller who asked for a native PAGANI run or vice versa.

If every rung fails too, the result with the smallest estimated
relative error (PAGANI's included) is returned, still flagged with its
own non-converged status and the complete history.

The *watchdog* is the stall half of the trigger: when the job did not
set ``max_iterations`` itself, the PAGANI attempt is capped at
``watchdog_iterations`` so a non-converging run reaches the ladder
instead of burning the full default iteration budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.backends.routing import BASELINE_LAST_RESORT
from repro.core.result import EscalationStage, IntegrationResult, Status
from repro.errors import ConfigurationError

#: default ladder — cheapest adequate baseline first (mirrors the
#: committed bench ordering; see docs/scenarios.md)
DEFAULT_LADDER: Tuple[str, ...] = BASELINE_LAST_RESORT

#: statuses that send a PAGANI result down the ladder
DEFAULT_TRIGGERS: Tuple[Status, ...] = (
    Status.MEMORY_EXHAUSTED,
    Status.NO_ACTIVE_REGIONS,
    Status.MAX_ITERATIONS,
)

_DEFAULT_WATCHDOG = 25
_DEFAULT_MAX_EVAL = 2_000_000

PolicyLike = Union[None, bool, str, dict, "EscalationPolicy"]


def _stage_from_result(result: IntegrationResult) -> EscalationStage:
    return EscalationStage(
        method=result.method or "pagani",
        status=result.status,
        estimate=result.estimate,
        errorest=result.errorest,
        neval=result.neval,
        iterations=result.iterations,
        wall_seconds=result.wall_seconds,
    )


@dataclass(frozen=True)
class EscalationPolicy:
    """What to do when a PAGANI run fails: the baseline ladder and knobs.

    ``describe()`` renders the canonical descriptor string — the value
    that enters cache fingerprints and job payloads — and
    ``parse(describe())`` round-trips.  ``triggers`` is an in-code
    testing knob and is *not* part of the descriptor; jobs configure the
    ladder, watchdog and stage budget only.
    """

    ladder: Tuple[str, ...] = DEFAULT_LADDER
    #: cap an uncapped PAGANI attempt at this many iterations (the stall
    #: watchdog); an explicit job ``max_iterations`` wins
    watchdog_iterations: int = _DEFAULT_WATCHDOG
    #: per-stage evaluation budget for the sampling baselines
    max_eval: int = _DEFAULT_MAX_EVAL
    triggers: Tuple[Status, ...] = field(default=DEFAULT_TRIGGERS)

    def __post_init__(self) -> None:
        ladder = tuple(str(m).strip() for m in self.ladder)
        if not ladder:
            raise ConfigurationError("escalation ladder must not be empty")
        for method in ladder:
            if method not in BASELINE_LAST_RESORT and method != "cuhre":
                raise ConfigurationError(
                    f"unknown escalation rung {method!r}; options: "
                    f"{sorted(set(BASELINE_LAST_RESORT) | {'cuhre'})}"
                )
        if len(set(ladder)) != len(ladder):
            raise ConfigurationError("escalation ladder repeats a rung")
        object.__setattr__(self, "ladder", ladder)
        if self.watchdog_iterations < 1:
            raise ConfigurationError("watchdog_iterations must be >= 1")
        if self.max_eval < 1:
            raise ConfigurationError("max_eval must be >= 1")

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Canonical descriptor, e.g. ``"two_phase>vegas>qmc;watchdog=8"``."""
        parts = [">".join(self.ladder)]
        if self.watchdog_iterations != _DEFAULT_WATCHDOG:
            parts.append(f"watchdog={self.watchdog_iterations}")
        if self.max_eval != _DEFAULT_MAX_EVAL:
            parts.append(f"max_eval={self.max_eval}")
        return ";".join(parts)

    @classmethod
    def parse(cls, value: PolicyLike) -> Optional["EscalationPolicy"]:
        """Resolve job-file / CLI spellings to a policy (``None`` = off).

        Accepts ``None``/``False`` (off), ``True``/``"default"`` (the
        default ladder), a descriptor string like
        ``"two_phase>vegas>qmc;watchdog=8;max_eval=500000"`` (commas
        also separate rungs), a dict with ``ladder`` /
        ``watchdog_iterations`` / ``max_eval`` keys, or a policy
        instance (returned as-is).
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, EscalationPolicy):
            return value
        if isinstance(value, dict):
            unknown = set(value) - {"ladder", "watchdog_iterations", "max_eval"}
            if unknown:
                raise ConfigurationError(
                    f"unknown escalation keys {sorted(unknown)}"
                )
            kwargs = dict(value)
            ladder = kwargs.pop("ladder", None)
            if ladder is not None:
                if isinstance(ladder, str):
                    ladder = cls._parse_ladder(ladder)
                kwargs["ladder"] = tuple(ladder)
            return cls(**kwargs)
        if isinstance(value, str):
            text = value.strip().lower()
            if text in ("", "default", "on", "true"):
                return cls()
            if text in ("off", "false", "none"):
                return None
            parts = [p.strip() for p in text.split(";") if p.strip()]
            kwargs = {"ladder": cls._parse_ladder(parts[0])}
            for part in parts[1:]:
                key, sep, raw = part.partition("=")
                if not sep:
                    raise ConfigurationError(
                        f"expected 'key=value' in escalation descriptor, "
                        f"got {part!r}"
                    )
                key = key.strip()
                if key == "watchdog":
                    kwargs["watchdog_iterations"] = int(raw)
                elif key == "max_eval":
                    kwargs["max_eval"] = int(raw)
                else:
                    raise ConfigurationError(
                        f"unknown escalation descriptor key {key!r} "
                        "(options: watchdog, max_eval)"
                    )
            return cls(**kwargs)
        raise ConfigurationError(
            f"cannot parse escalation policy from {value!r}"
        )

    @staticmethod
    def _parse_ladder(text: str) -> Tuple[str, ...]:
        seps = ">" if ">" in text else ","
        return tuple(p.strip() for p in text.split(seps) if p.strip())

    # ------------------------------------------------------------------
    def should_escalate(self, result: IntegrationResult) -> bool:
        """Does ``result`` (a finished PAGANI attempt) trigger the ladder?"""
        return result.status in self.triggers

    def apply(
        self,
        integrand: Callable,
        ndim: int,
        request,
        first_result: IntegrationResult,
        *,
        device=None,
        cancel_check: Optional[Callable[[], bool]] = None,
        bounds: Optional[Sequence[Sequence[float]]] = None,
    ) -> IntegrationResult:
        """Run the ladder for a failed PAGANI attempt; return the outcome.

        ``request`` supplies the tolerances/bounds/filtering the stages
        must honour (an :class:`~repro.api.IntegrationRequest`; the
        explicit ``bounds`` argument wins when the caller resolved them
        separately, as the service does).  ``cancel_check`` is polled
        between stages — when it reports True the ladder stops early and
        the best result so far is returned with the partial history (the
        caller's cancellation machinery decides what to surface).

        ``device`` intentionally does not thread into the stages: a
        virtual device hosts one run at a time, so each stage builds its
        own.
        """
        from repro.api import IntegrationRequest, integrate_request

        stages: List[EscalationStage] = [_stage_from_result(first_result)]
        candidates: List[IntegrationResult] = [first_result]
        final: Optional[IntegrationResult] = None
        stage_bounds = bounds if bounds is not None else request.bounds
        for method in self.ladder:
            if cancel_check is not None and cancel_check():
                break
            stage_request = IntegrationRequest(
                bounds=stage_bounds,
                rel_tol=request.rel_tol,
                abs_tol=request.abs_tol,
                max_iterations=request.max_iterations,
                relerr_filtering=request.relerr_filtering,
                method=method,
            )
            start = time.perf_counter()
            try:
                stage_result = integrate_request(
                    integrand, ndim, stage_request, max_eval=self.max_eval
                )
            except Exception as exc:  # a rung crashing must not kill the job
                stages.append(
                    EscalationStage(
                        method=method,
                        status=Status.MAX_EVALUATIONS,
                        wall_seconds=time.perf_counter() - start,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            stages.append(_stage_from_result(stage_result))
            candidates.append(stage_result)
            if stage_result.converged:
                final = stage_result
                break
        if final is None:
            # ladder exhausted (or cancelled): most accurate honest answer
            final = min(candidates, key=lambda r: r.rel_errorest)
        final.escalation = stages
        return final
