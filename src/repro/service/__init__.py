"""Integration service layer: priority job queue + result cache.

PR 1 made the execution substrate pluggable, PR 2 made many integrals
one workload; this package adds the layer that **accepts, schedules and
caches requests** — the shape of a system serving integration traffic
rather than running one batch:

:mod:`repro.service.jobs`
    The job model: :class:`JobSpec` (request), :class:`JobHandle`
    (future-like), :class:`JobStatus` (lifecycle).
:mod:`repro.service.queue`
    Thread-safe priority queue (priority desc, then looser-``rel_tol``
    shortest-job-first, then FIFO) with lazy cancellation.
:mod:`repro.service.cache`
    Content-addressed LRU :class:`ResultCache`; hits replay the stored
    :class:`~repro.core.result.IntegrationResult` bit-for-bit.
:mod:`repro.service.service`
    :class:`IntegrationService` — ``shards`` worker loops (one by
    default), each admitting up to ``max_concurrent`` jobs into a
    weighted (priority-proportional) batch rotation pinned to its own
    backend instance, with in-flight request coalescing across shards.
:mod:`repro.service.aio`
    ``asyncio`` wrapper (:class:`AsyncIntegrationService`).
:mod:`repro.service.store`
    Durable tier: :class:`DurableResultStore` (SQLite, ``float.hex``
    round-trip) and :class:`TieredResultCache` (LRU front + durable
    back) — the cache survives process restarts bit-for-bit.
:mod:`repro.service.http`
    Stdlib HTTP/JSON front end (:class:`HttpIntegrationServer`) with
    admission control; see :func:`repro.serve_http`.

Jobs are :class:`JobSpec` requests and resolve through future-like
:class:`JobHandle` objects; duplicates are served from the cache or
coalesce onto the in-flight twin:

>>> from repro.service import IntegrationService, JobSpec
>>> with IntegrationService(max_concurrent=2, shards=2) as svc:
...     first = svc.submit("3D-f4", rel_tol=1e-3, priority=4)
...     estimate = first.result(timeout=300).estimate   # runs to completion
...     duplicate = svc.submit_spec(JobSpec("3D-f4", rel_tol=1e-3))
...     done = svc.wait_all(timeout=300)
>>> done, first.status.value, duplicate.status.value
(True, 'done', 'done')
>>> duplicate.cache_hit                    # warm cache: no second run
True
>>> duplicate.result().estimate == estimate  # replay is bit-identical
True

See ``docs/service.md`` for the job model, the cache fingerprint
contract and the priority semantics, ``docs/architecture.md`` for where
the layer sits, and ``pagani-repro serve`` /
``benchmarks/harness.py --service`` for the CLI and benchmark surfaces.
"""

from repro.service.aio import AsyncIntegrationService, handle_as_future
from repro.service.cache import ResultCache, job_fingerprint
from repro.service.escalation import EscalationPolicy
from repro.service.jobs import (
    JobFailedError,
    JobHandle,
    JobSpec,
    JobStats,
    JobStatus,
)
from repro.service.http import HttpIntegrationServer
from repro.service.queue import JobQueue
from repro.service.service import IntegrationService, ServiceClosedError
from repro.service.store import DurableResultStore, TieredResultCache

__all__ = [
    "IntegrationService",
    "AsyncIntegrationService",
    "ServiceClosedError",
    "JobQueue",
    "JobSpec",
    "JobHandle",
    "JobStats",
    "JobStatus",
    "JobFailedError",
    "ResultCache",
    "EscalationPolicy",
    "job_fingerprint",
    "handle_as_future",
    "DurableResultStore",
    "TieredResultCache",
    "HttpIntegrationServer",
]
