"""Integration service layer: priority job queue + result cache.

PR 1 made the execution substrate pluggable, PR 2 made many integrals
one workload; this package adds the layer that **accepts, schedules and
caches requests** — the shape of a system serving integration traffic
rather than running one batch:

:mod:`repro.service.jobs`
    The job model: :class:`JobSpec` (request), :class:`JobHandle`
    (future-like), :class:`JobStatus` (lifecycle).
:mod:`repro.service.queue`
    Thread-safe priority queue (priority desc, then looser-``rel_tol``
    shortest-job-first, then FIFO) with lazy cancellation.
:mod:`repro.service.cache`
    Content-addressed LRU :class:`ResultCache`; hits replay the stored
    :class:`~repro.core.result.IntegrationResult` bit-for-bit.
:mod:`repro.service.service`
    :class:`IntegrationService` — the worker loop admitting up to
    ``max_concurrent`` jobs into a weighted (priority-proportional)
    batch rotation, with in-flight request coalescing.
:mod:`repro.service.aio`
    ``asyncio`` wrapper (:class:`AsyncIntegrationService`).

See ``docs/service.md`` for the job model, the cache fingerprint
contract and the priority semantics, and ``pagani-repro serve`` /
``benchmarks/harness.py --service`` for the CLI and benchmark surfaces.
"""

from repro.service.aio import AsyncIntegrationService, handle_as_future
from repro.service.cache import ResultCache, job_fingerprint
from repro.service.jobs import (
    JobFailedError,
    JobHandle,
    JobSpec,
    JobStats,
    JobStatus,
)
from repro.service.queue import JobQueue
from repro.service.service import IntegrationService, ServiceClosedError

__all__ = [
    "IntegrationService",
    "AsyncIntegrationService",
    "ServiceClosedError",
    "JobQueue",
    "JobSpec",
    "JobHandle",
    "JobStats",
    "JobStatus",
    "JobFailedError",
    "ResultCache",
    "job_fingerprint",
    "handle_as_future",
]
