"""Durable content-addressed result store + tiered cache.

The in-memory :class:`~repro.service.cache.ResultCache` dies with the
process; this module adds the persistent tier beneath it:

:class:`DurableResultStore`
    A SQLite-backed key/value store of finished
    :class:`~repro.core.result.IntegrationResult` objects, keyed by the
    *same* SHA-256 fingerprint the LRU uses
    (:func:`~repro.service.cache.job_fingerprint`) — nothing about the
    cache identity changes when a result crosses the process boundary.
:class:`TieredResultCache`
    A drop-in :class:`~repro.service.cache.ResultCache` whose misses
    fall through to a durable store.  Hits in the durable tier are
    *promoted* into the LRU; LRU eviction merely *demotes* (the memory
    copy is dropped, the durable row stays), so capacity pressure never
    loses a computed result.

**Bit-for-bit durability contract.**  Results are serialised with every
float as ``float.hex()`` (and parsed back with ``float.fromhex``), so a
replay after a process restart carries *exactly* the bits the original
run produced — the same contract the in-memory cache keeps, now across
restarts.  ``tests/service/test_durable_store.py`` asserts the round
trip field by field against cold :func:`repro.api.integrate` runs.

**Corruption.**  A row whose payload no longer parses (truncated disk
write, schema from the future, hand editing) is *quarantined* on read:
moved out of the results table into a ``quarantine`` table, counted,
and reported as a miss — a damaged entry costs one recompute, never a
wrong answer.

Thread/process model: one store instance is safe to share across the
service's shard threads (a single serialised connection guarded by a
lock); separate *processes* pointing at the same path coordinate
through SQLite's own file locking (WAL mode, busy timeout), which is
what makes the cache shareable between restarts and between sibling
servers on one host.
"""

from __future__ import annotations

import copy
import json
import sqlite3
import threading
import time
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.result import (
    EscalationStage,
    IntegrationResult,
    IterationRecord,
    Status,
)
from repro.service.cache import ResultCache

#: bump when the serialised result payload layout changes; rows written
#: by a different schema are quarantined on read (one recompute, never
#: a misparse).
STORE_SCHEMA = 1

#: filename used when the store is given a directory instead of a file
STORE_FILENAME = "results.sqlite"

_INT_FIELDS = ("neval", "nregions", "iterations")
_FLOAT_FIELDS = ("estimate", "errorest", "sim_seconds", "wall_seconds")


def _hex(value: float) -> str:
    return float(value).hex()


def _unhex(value: str) -> float:
    return float.fromhex(value)


def result_to_payload(result: IntegrationResult) -> dict:
    """Serialise a result with exact (``float.hex``) float encoding."""
    payload: dict = {
        "schema": STORE_SCHEMA,
        "status": result.status.value,
        "method": result.method,
        "true_value": (
            None if result.true_value is None else _hex(result.true_value)
        ),
        "trace": [
            {
                "iteration": int(rec.iteration),
                "n_regions": int(rec.n_regions),
                "n_active": int(rec.n_active),
                "n_finished_relerr": int(rec.n_finished_relerr),
                "n_finished_threshold": int(rec.n_finished_threshold),
                "estimate": _hex(rec.estimate),
                "errorest": _hex(rec.errorest),
                "finished_estimate": _hex(rec.finished_estimate),
                "finished_errorest": _hex(rec.finished_errorest),
                "neval": int(rec.neval),
                "sim_seconds": _hex(rec.sim_seconds),
            }
            for rec in result.trace
        ],
    }
    for name in _FLOAT_FIELDS:
        payload[name] = _hex(getattr(result, name))
    for name in _INT_FIELDS:
        payload[name] = int(getattr(result, name))
    # Escalation provenance travels with the result (the honesty
    # contract: a replayed escalated result must still say so).  The key
    # is omitted for native results, keeping their payloads byte-stable
    # across this addition.
    if result.escalation is not None:
        payload["escalation"] = [
            {
                "method": stage.method,
                "status": stage.status.value,
                "estimate": _hex(stage.estimate),
                "errorest": _hex(stage.errorest),
                "neval": int(stage.neval),
                "iterations": int(stage.iterations),
                "wall_seconds": _hex(stage.wall_seconds),
                "error": stage.error,
            }
            for stage in result.escalation
        ]
    return payload


def result_from_payload(payload: dict) -> IntegrationResult:
    """Parse :func:`result_to_payload` output back, bit for bit.

    Raises ``StorePayloadError`` on anything that does not parse —
    including a schema number this build does not understand.
    """
    try:
        if payload["schema"] != STORE_SCHEMA:
            raise StorePayloadError(
                f"unknown store schema {payload['schema']!r}"
            )
        trace = [
            IterationRecord(
                iteration=int(rec["iteration"]),
                n_regions=int(rec["n_regions"]),
                n_active=int(rec["n_active"]),
                n_finished_relerr=int(rec["n_finished_relerr"]),
                n_finished_threshold=int(rec["n_finished_threshold"]),
                estimate=_unhex(rec["estimate"]),
                errorest=_unhex(rec["errorest"]),
                finished_estimate=_unhex(rec["finished_estimate"]),
                finished_errorest=_unhex(rec["finished_errorest"]),
                neval=int(rec["neval"]),
                sim_seconds=_unhex(rec["sim_seconds"]),
            )
            for rec in payload["trace"]
        ]
        result = IntegrationResult(
            estimate=_unhex(payload["estimate"]),
            errorest=_unhex(payload["errorest"]),
            status=Status(payload["status"]),
            neval=int(payload["neval"]),
            nregions=int(payload["nregions"]),
            iterations=int(payload["iterations"]),
            method=str(payload["method"]),
            sim_seconds=_unhex(payload["sim_seconds"]),
            wall_seconds=_unhex(payload["wall_seconds"]),
            trace=trace,
            true_value=(
                None if payload["true_value"] is None
                else _unhex(payload["true_value"])
            ),
            escalation=(
                None
                if "escalation" not in payload
                else [
                    EscalationStage(
                        method=str(stage["method"]),
                        status=Status(stage["status"]),
                        estimate=_unhex(stage["estimate"]),
                        errorest=_unhex(stage["errorest"]),
                        neval=int(stage["neval"]),
                        iterations=int(stage["iterations"]),
                        wall_seconds=_unhex(stage["wall_seconds"]),
                        error=stage["error"],
                    )
                    for stage in payload["escalation"]
                ]
            ),
        )
    except StorePayloadError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise StorePayloadError(f"malformed result payload: {exc}") from exc
    return result


class StorePayloadError(ValueError):
    """A stored result payload did not parse."""


class DurableResultStore:
    """SQLite-backed persistent tier of the content-addressed cache.

    Parameters
    ----------
    path:
        SQLite file, or a directory (``STORE_FILENAME`` is created
        inside it).  Parent directories are created as needed.
    """

    def __init__(self, path: Union[str, Path]):
        path = Path(path)
        if path.suffix == "" and not path.is_file():
            path.mkdir(parents=True, exist_ok=True)
            path = path / STORE_FILENAME
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(path), check_same_thread=False, timeout=30.0
        )
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        with self._lock:
            cur = self._conn
            # WAL lets a sibling process read while this one writes; the
            # busy timeout above covers the write/write case.
            cur.execute("PRAGMA journal_mode=WAL")
            cur.execute("PRAGMA synchronous=NORMAL")
            cur.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " fingerprint TEXT PRIMARY KEY,"
                " schema INTEGER NOT NULL,"
                " payload TEXT NOT NULL,"
                " created_at REAL NOT NULL)"
            )
            cur.execute(
                "CREATE TABLE IF NOT EXISTS quarantine ("
                " fingerprint TEXT,"
                " payload TEXT,"
                " reason TEXT,"
                " quarantined_at REAL)"
            )
            cur.commit()

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[IntegrationResult]:
        """The stored result (exact bits), or None (counted miss).

        A row that fails to parse is quarantined and reported as a miss.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
        if row is None:
            with self._lock:
                self.misses += 1
            return None
        try:
            result = result_from_payload(json.loads(row[0]))
        except (StorePayloadError, ValueError) as exc:
            self._quarantine(fingerprint, row[0], repr(exc))
            return None
        with self._lock:
            self.hits += 1
        return result

    def put(self, fingerprint: str, result: IntegrationResult) -> None:
        """Persist (idempotently — last write wins) one finished result."""
        blob = json.dumps(
            result_to_payload(result), sort_keys=True, separators=(",", ":")
        )
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(fingerprint, schema, payload, created_at) "
                "VALUES (?, ?, ?, ?)",
                (fingerprint, STORE_SCHEMA, blob, time.time()),
            )
            self._conn.commit()
            self.writes += 1

    def _quarantine(self, fingerprint: str, payload: str, reason: str) -> None:
        with self._lock:
            self._conn.execute(
                "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
            )
            self._conn.execute(
                "INSERT INTO quarantine "
                "(fingerprint, payload, reason, quarantined_at) "
                "VALUES (?, ?, ?, ?)",
                (fingerprint, payload, reason, time.time()),
            )
            self._conn.commit()
            self.quarantined += 1
            self.misses += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(row[0])

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        return row is not None

    def fingerprints(self) -> List[str]:
        """Every stored fingerprint (insertion order not guaranteed)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT fingerprint FROM results"
            ).fetchall()
        return [r[0] for r in rows]

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM results")
            self._conn.commit()

    def stats(self) -> Dict[str, float]:
        return {
            "path": str(self.path),
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "DurableResultStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TieredResultCache(ResultCache):
    """LRU front + durable back, presented as one :class:`ResultCache`.

    ``get`` checks the LRU first; a miss falls through to the durable
    store and a durable hit is **promoted** into the LRU (so repeated
    traffic pays SQLite once, not per request).  ``put`` writes through
    to both tiers.  LRU eviction only drops the memory copy — the
    durable row survives, which is the *demotion* half of the contract.

    ``hits``/``misses``/``evictions`` keep their base meaning (a durable
    hit counts as a cache hit); ``stats()`` additionally breaks hits
    into memory vs durable and embeds the store's own counters.
    """

    def __init__(
        self,
        store: Union[DurableResultStore, str, Path],
        max_entries: int = 256,
    ):
        super().__init__(max_entries=max_entries)
        if not isinstance(store, DurableResultStore):
            store = DurableResultStore(store)
        self.store = store
        self.durable_hits = 0

    def get(self, fingerprint: str) -> Optional[IntegrationResult]:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
        if entry is not None:
            # Deep copy outside the lock (see ResultCache.get): the
            # stored entry is a private copy nobody mutates.
            return copy.deepcopy(entry)
        # Durable tier outside the LRU lock: SQLite serialises itself,
        # and a concurrent put of the same fingerprint is idempotent.
        result = self.store.get(fingerprint)
        if result is None:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
            self.durable_hits += 1
        self._promote(fingerprint, result)
        return result

    def _promote(self, fingerprint: str, result: IntegrationResult) -> None:
        """Install a durable hit into the LRU (memory copy only)."""
        snapshot = copy.deepcopy(result)  # outside the lock, see get()
        with self._lock:
            self._entries[fingerprint] = snapshot
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def put(self, fingerprint: str, result: IntegrationResult) -> None:
        super().put(fingerprint, result)
        self.store.put(fingerprint, result)

    def stats(self) -> Dict[str, float]:
        base = super().stats()
        with self._lock:
            durable_hits = self.durable_hits
        base["memory_hits"] = base["hits"] - durable_hits
        base["durable_hits"] = durable_hits
        base["durable"] = self.store.stats()
        return base

    def close(self) -> None:
        self.store.close()


# Keep the trace row layout in one place: a drift between IterationRecord
# and the serializer would silently drop fields, so assert the coverage
# at import time (cheap, and it turns a refactor slip into a loud error).
_TRACE_FIELDS = {f.name for f in dataclass_fields(IterationRecord)}
assert _TRACE_FIELDS == {
    "iteration", "n_regions", "n_active", "n_finished_relerr",
    "n_finished_threshold", "estimate", "errorest", "finished_estimate",
    "finished_errorest", "neval", "sim_seconds",
}, _TRACE_FIELDS

# Same guard for the escalation stage rows and the result itself: a new
# field on either must show up here (and in the serializer) or the
# durable tier would silently drop it.
_STAGE_FIELDS = {f.name for f in dataclass_fields(EscalationStage)}
assert _STAGE_FIELDS == {
    "method", "status", "estimate", "errorest", "neval", "iterations",
    "wall_seconds", "error",
}, _STAGE_FIELDS
_RESULT_FIELDS = {f.name for f in dataclass_fields(IntegrationResult)}
assert _RESULT_FIELDS == {
    "estimate", "errorest", "status", "neval", "nregions", "iterations",
    "method", "sim_seconds", "wall_seconds", "trace", "true_value",
    "escalation",
}, _RESULT_FIELDS

__all__ = [
    "DurableResultStore",
    "TieredResultCache",
    "StorePayloadError",
    "result_to_payload",
    "result_from_payload",
    "STORE_SCHEMA",
    "STORE_FILENAME",
]
