"""asyncio facade over the integration service.

The service's worker thread completes :class:`~repro.service.jobs.JobHandle`
objects from outside any event loop; this module bridges them into
``asyncio`` futures via ``add_done_callback`` +
``loop.call_soon_threadsafe`` — no polling, no executor threads per job.

Usage::

    async def main():
        async with AsyncIntegrationService(max_concurrent=4) as svc:
            r1, r2 = await asyncio.gather(
                svc.integrate("5D-f4", rel_tol=1e-4, priority=2),
                svc.integrate("8D-f7", rel_tol=1e-3),
            )
"""

from __future__ import annotations

import asyncio
from concurrent.futures import CancelledError
from typing import Optional

from repro.core.result import IntegrationResult
from repro.service.jobs import JobHandle, JobStatus
from repro.service.service import IntegrationService


def handle_as_future(
    handle: JobHandle, loop: Optional[asyncio.AbstractEventLoop] = None
) -> "asyncio.Future[IntegrationResult]":
    """Bridge a job handle into an ``asyncio.Future``.

    Must be called with a running event loop (or an explicit ``loop``).
    Cancelling the future cancels the underlying job (best-effort, like
    :meth:`JobHandle.cancel`); a cancelled job cancels the future.
    """
    if loop is None:
        loop = asyncio.get_running_loop()
    future: "asyncio.Future[IntegrationResult]" = loop.create_future()

    def on_done(h: JobHandle) -> None:
        def resolve() -> None:
            if future.cancelled():
                return
            # Route through result() so the async path raises exactly
            # what the sync path raises (JobFailedError with the
            # integrand's exception chained, CancelledError on cancel).
            try:
                future.set_result(h.result(timeout=0))
            except CancelledError:
                future.cancel()
            except BaseException as exc:
                future.set_exception(exc)

        loop.call_soon_threadsafe(resolve)

    def on_future_done(fut: "asyncio.Future[IntegrationResult]") -> None:
        if fut.cancelled() and not handle.done:
            handle.cancel()

    handle.add_done_callback(on_done)
    future.add_done_callback(on_future_done)
    return future


class AsyncIntegrationService:
    """``asyncio`` wrapper around :class:`IntegrationService`.

    Accepts the same constructor arguments (or wraps an existing service
    passed as ``service=``); submission returns awaitables instead of
    blocking handles.
    """

    def __init__(self, service: Optional[IntegrationService] = None, **kwargs):
        if service is not None and kwargs:
            raise TypeError("pass either a service instance or kwargs, not both")
        self.service = service if service is not None else IntegrationService(**kwargs)

    def submit(self, *args, **kwargs) -> "asyncio.Future[IntegrationResult]":
        """Like :meth:`IntegrationService.submit`, returning a future."""
        return handle_as_future(self.service.submit(*args, **kwargs))

    async def integrate(self, *args, **kwargs) -> IntegrationResult:
        """Submit and await one job."""
        return await self.submit(*args, **kwargs)

    def stats(self) -> dict:
        """Counter snapshot from the wrapped service — the same public
        :meth:`IntegrationService.stats` dict the HTTP ``/metrics``
        endpoint serves (no private attribute access, no extra state)."""
        return self.service.stats()

    async def aclose(self, cancel_pending: bool = False) -> None:
        """Shut the service down without blocking the event loop."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.service.shutdown(
                wait=True, cancel_pending=cancel_pending
            )
        )

    async def __aenter__(self) -> "AsyncIntegrationService":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()


__all__ = ["AsyncIntegrationService", "handle_as_future", "JobStatus"]
