"""Thread-safe priority queue of pending jobs.

Ordering (most-urgent first):

1. **priority** — larger first.  Priorities are small positive integers;
   an operator raising a job's priority moves it ahead of every
   lower-priority job no matter how long those have waited.
2. **rel_tol** — looser first within one priority class.  A looser
   tolerance means fewer breadth-first iterations, so this is
   shortest-job-first: cheap jobs clear the queue quickly instead of
   convoying behind an expensive same-priority neighbour.
3. **submission order** — FIFO tie-break, for determinism.

Cancellation is lazy — a queued job cancels by flipping its own status,
no heap surgery — but not *unboundedly* lazy: every entry registers a
done-callback that keeps a live queued-count exact (``__len__`` is O(1);
the HTTP admission gate calls it on every POST) and counts the dead
entries still parked in the heap.  Once the dead outnumber the live past
a threshold the heap is compacted in one pass, so a cancel-heavy client
cannot grow the heap without bound.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import List, Optional, Tuple

from repro.service.jobs import JobHandle, JobStatus

#: dead entries tolerated in the heap before a compaction pass; the heap
#: is also compacted whenever dead entries outnumber live ones beyond
#: this floor (amortised O(1) per push/cancel either way).
COMPACT_DEAD_THRESHOLD = 64


class _Entry:
    """One heap slot: the handle plus its removed-from-queue flag.

    ``removed`` flips exactly once — either when ``pop``/``peek``
    physically discards the slot, or when the handle's done-callback
    fires first (cancellation while queued).  Whoever flips it owns the
    live-count decrement, so the count stays exact under races between
    the two paths.
    """

    __slots__ = ("handle", "removed")

    def __init__(self, handle: JobHandle):
        self.handle = handle
        self.removed = False


class JobQueue:
    """Priority queue of :class:`~repro.service.jobs.JobHandle`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._heap: List[Tuple[int, float, int, _Entry]] = []
        self._seq = itertools.count()
        #: entries pushed and not yet removed (== still-queued jobs,
        #: modulo the instant between a cancel and its callback)
        self._queued = 0
        #: removed entries still physically parked in the heap
        self._dead = 0

    @staticmethod
    def _key(handle: JobHandle, seq: int) -> Tuple[int, float, int]:
        # heapq is a min-heap: negate priority and rel_tol so larger
        # priority / looser tolerance sort first.
        return (-handle.spec.priority, -handle.spec.rel_tol, seq)

    # ------------------------------------------------------------------
    def push(self, handle: JobHandle) -> None:
        entry = _Entry(handle)
        with self._lock:
            seq = next(self._seq)
            heapq.heappush(self._heap, (*self._key(handle, seq), entry))
            self._queued += 1
        # Registered outside the queue lock: a handle that is already
        # terminal runs the callback immediately, and the callback takes
        # the queue lock itself.
        handle.add_done_callback(lambda _h, e=entry: self._entry_done(e))

    def _entry_done(self, entry: _Entry) -> None:
        """Done-callback: account for an entry that left QUEUED.

        Fires on every terminal transition — including the ordinary
        pop → run → done path, where ``removed`` is already set and this
        is a no-op.  Only a cancel-while-queued reaches the accounting.
        """
        with self._lock:
            if entry.removed:
                return
            entry.removed = True
            self._queued -= 1
            self._dead += 1
            self._maybe_compact_locked()

    def _maybe_compact_locked(self) -> None:
        """Rebuild the heap once dead entries dominate (amortised O(1))."""
        if self._dead <= COMPACT_DEAD_THRESHOLD or self._dead <= self._queued:
            return
        self._heap = [item for item in self._heap if not item[-1].removed]
        heapq.heapify(self._heap)
        self._dead = 0

    # ------------------------------------------------------------------
    def _discard_locked(self, entry: _Entry) -> None:
        """Account for an entry physically popped off the heap."""
        if entry.removed:
            self._dead -= 1
        else:
            entry.removed = True
            self._queued -= 1

    def pop(self) -> Optional[JobHandle]:
        """Most-urgent still-queued handle, or None when empty."""
        with self._lock:
            while self._heap:
                entry = heapq.heappop(self._heap)[-1]
                still_queued = (
                    not entry.removed
                    and entry.handle.status is JobStatus.QUEUED
                )
                self._discard_locked(entry)
                if still_queued:
                    return entry.handle
            return None

    def peek(self) -> Optional[JobHandle]:
        with self._lock:
            while self._heap:
                entry = self._heap[0][-1]
                if (
                    not entry.removed
                    and entry.handle.status is JobStatus.QUEUED
                ):
                    return entry.handle
                heapq.heappop(self._heap)  # drop the dead entry
                self._discard_locked(entry)
            return None

    def __len__(self) -> int:
        """Number of still-queued entries (cancelled ones excluded).

        O(1): a live counter maintained by push/pop and the handles'
        done-callbacks — this runs on every HTTP POST (admission
        control), so it must not scan the heap.
        """
        with self._lock:
            return self._queued

    def heap_size(self) -> int:
        """Physical heap slots, dead entries included (observability)."""
        with self._lock:
            return len(self._heap)

    def snapshot(self) -> List[JobHandle]:
        """Still-queued handles in service order (for status displays)."""
        with self._lock:
            entries = [
                item
                for item in self._heap
                if not item[-1].removed
                and item[-1].handle.status is JobStatus.QUEUED
            ]
        return [item[-1].handle for item in sorted(entries, key=lambda e: e[:3])]
