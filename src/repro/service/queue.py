"""Thread-safe priority queue of pending jobs.

Ordering (most-urgent first):

1. **priority** — larger first.  Priorities are small positive integers;
   an operator raising a job's priority moves it ahead of every
   lower-priority job no matter how long those have waited.
2. **rel_tol** — looser first within one priority class.  A looser
   tolerance means fewer breadth-first iterations, so this is
   shortest-job-first: cheap jobs clear the queue quickly instead of
   convoying behind an expensive same-priority neighbour.
3. **submission order** — FIFO tie-break, for determinism.

Cancellation is lazy: :meth:`JobQueue.pop` silently discards entries
whose handle left the ``QUEUED`` state (a queued job cancels by flipping
its own status — no heap surgery required).
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import List, Optional, Tuple

from repro.service.jobs import JobHandle, JobStatus


class JobQueue:
    """Priority queue of :class:`~repro.service.jobs.JobHandle`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._heap: List[Tuple[int, float, int, JobHandle]] = []
        self._seq = itertools.count()

    @staticmethod
    def _key(handle: JobHandle, seq: int) -> Tuple[int, float, int]:
        # heapq is a min-heap: negate priority and rel_tol so larger
        # priority / looser tolerance sort first.
        return (-handle.spec.priority, -handle.spec.rel_tol, seq)

    # ------------------------------------------------------------------
    def push(self, handle: JobHandle) -> None:
        with self._lock:
            seq = next(self._seq)
            heapq.heappush(self._heap, (*self._key(handle, seq), handle))

    def pop(self) -> Optional[JobHandle]:
        """Most-urgent still-queued handle, or None when empty."""
        with self._lock:
            while self._heap:
                handle = heapq.heappop(self._heap)[-1]
                if handle.status is JobStatus.QUEUED:
                    return handle
            return None

    def peek(self) -> Optional[JobHandle]:
        with self._lock:
            while self._heap:
                handle = self._heap[0][-1]
                if handle.status is JobStatus.QUEUED:
                    return handle
                heapq.heappop(self._heap)  # drop the cancelled entry
            return None

    def __len__(self) -> int:
        """Number of still-queued entries (cancelled ones excluded)."""
        with self._lock:
            return sum(
                1 for *_, h in self._heap if h.status is JobStatus.QUEUED
            )

    def snapshot(self) -> List[JobHandle]:
        """Still-queued handles in service order (for status displays)."""
        with self._lock:
            entries = [e for e in self._heap if e[-1].status is JobStatus.QUEUED]
        return [e[-1] for e in sorted(entries, key=lambda e: e[:3])]
