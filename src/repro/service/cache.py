"""Content-addressed result cache.

The **fingerprint contract**: two jobs share a fingerprint iff they are
the *same computation* — same integrand identity, same domain, same
tolerances, same iteration cap, same filtering flag, and a backend/chunk
decomposition that produces the same bits.  Every float enters the hash
as ``float.hex()`` (exact — no decimal rounding can alias two different
tolerances), bounds enter per-component, and the integrand enters by its
canonical catalogue spec (or a callable's explicit ``cache_key``).
Anything outside the fingerprint (priority, label) is scheduling
metadata and must never change the numbers, so it is excluded.

Because the PAGANI run is deterministic for a fixed fingerprint, a cache
hit may *replay* the stored :class:`~repro.core.result.IntegrationResult`
bit-for-bit instead of recomputing it.  The cache hands out deep copies
both ways, so neither the producer nor any consumer can mutate the
stored result.

Eviction is LRU with a fixed entry budget; hits, misses and evictions
are counted for the service stats and the benchmark harness.
"""

from __future__ import annotations

import copy
import hashlib
import json
import threading
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from repro.core.result import IntegrationResult

#: bump when the fingerprint payload layout changes, so stale
#: disk-serialised fingerprints (if anyone persists them) cannot collide
FINGERPRINT_SCHEMA = 1


def job_fingerprint(
    integrand_id: str,
    ndim: int,
    bounds: np.ndarray,
    rel_tol: float,
    abs_tol: float,
    backend: str,
    chunk_budget: int,
    max_iterations: Optional[int],
    relerr_filtering: bool,
    collect_traces: bool = False,
    escalation: Optional[str] = None,
) -> str:
    """SHA-256 over the canonical job payload (see module docstring).

    ``escalation`` is the effective policy descriptor when baseline
    escalation is armed for the job (``None`` = off).  An armed policy
    can change the numbers (a failed PAGANI run is re-run down the
    ladder), so it must change the fingerprint: escalated and native
    results never alias.  The key is *omitted* when off, keeping every
    pre-escalation fingerprint byte-stable.
    """
    payload = {
        "schema": FINGERPRINT_SCHEMA,
        "integrand": integrand_id,
        "ndim": int(ndim),
        "bounds": [
            [float(lo).hex(), float(hi).hex()] for lo, hi in np.asarray(bounds)
        ],
        "rel_tol": float(rel_tol).hex(),
        "abs_tol": float(abs_tol).hex(),
        "backend": backend,
        "chunk_budget": int(chunk_budget),
        "max_iterations": None if max_iterations is None else int(max_iterations),
        "relerr_filtering": bool(relerr_filtering),
        # Traces do not change the numbers, but a replayed result must
        # carry the same payload shape the submitting service would have
        # computed — a shared cache must not hand trace-laden results to
        # a trace-free service (or vice versa).
        "collect_traces": bool(collect_traces),
    }
    if escalation is not None:
        payload["escalation"] = str(escalation)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


class ResultCache:
    """Thread-safe LRU cache of finished integration results."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, IntegrationResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[IntegrationResult]:
        """A deep copy of the cached result, or None (counted miss)."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
        # Deep-copying a trace-laden result can take milliseconds; doing
        # it under the lock would stall every shard and HTTP thread
        # behind one large replay.  Copying outside is safe because
        # stored entries are private deep copies nobody mutates.
        return copy.deepcopy(entry)

    def put(self, fingerprint: str, result: IntegrationResult) -> None:
        """Store (a deep copy of) a finished result, evicting LRU."""
        snapshot = copy.deepcopy(result)  # outside the lock, see get()
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
            self._entries[fingerprint] = snapshot
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before the first lookup)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }
