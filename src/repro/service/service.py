"""The integration service: queue → cache → sharded weighted rotations.

:class:`IntegrationService` turns the batch runner into a traffic-serving
system.  ``shards`` worker threads (one by default) each drive their own
long-lived :class:`~repro.batch.BatchScheduler` rotation pinned to their
own execution-backend instance, all pulling from one shared
:class:`~repro.service.queue.JobQueue` and one shared
:class:`~repro.service.cache.ResultCache`:

* **admission** — whenever a shard has fewer than ``max_concurrent``
  live runs, it pops the most-urgent queued job (see
  :mod:`repro.service.queue`).  A job whose fingerprint is cached
  completes instantly with a bit-identical replay; a job whose
  fingerprint matches an *in-flight* run — on any shard — coalesces onto
  it (no second run, no extra slot — the classic cache-stampede fix);
  everything else starts a fresh :class:`~repro.core.pagani.PaganiRun`
  and joins the admitting shard's rotation.
* **weighted rotation** — each scheduler round serves the live members
  whose accumulated credit reaches the round threshold (credit grows by
  the job's priority), so a priority-``2p`` job is served iterations
  twice as often as a priority-``p`` one and, for equal work, finishes
  first.  Every round still fuses the served members' evaluation chunks
  into one backend submission.
* **completion** — converged runs leave their rotation, populate the
  shared cache, and resolve their handle (and any coalesced followers).

Sharding (``shards=K``) multiplies the rotations, not the semantics:
every shard resolves the *same* backend spec, so fingerprints — which
hash the backend name and chunk grain — are shard-independent and cache
hits stay bit-for-bit regardless of which shard computed the entry.
Pair ``shards=K`` with a per-shard parallel backend (``"process"``)
only when the host has cores to spare; on a small host prefer one shard
with one wide pool.

Thread model: clients call ``submit``/``cancel``/``result`` from any
thread; scheduler and cache-write activity happens on the shard worker
threads, and every structure shared across shards (the in-flight
fingerprint map, member/follower tables, counters) is only mutated under
the service condition lock.  The service survives integrand failures
(the failing job's handle carries the exception; the rotation continues)
and is explicitly shut down with :meth:`IntegrationService.shutdown` or
a ``with`` block.
"""

from __future__ import annotations

import copy
import threading
from concurrent.futures import CancelledError
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends import ArrayBackend, BackendLike, get_backend, new_backend
from repro.batch import BatchMemberError, BatchScheduler
from repro.core.pagani import PaganiConfig, PaganiIntegrator
from repro.errors import ConfigurationError
from repro.service.cache import ResultCache, job_fingerprint
from repro.service.escalation import EscalationPolicy
from repro.service.jobs import (
    JobHandle,
    JobSpec,
    JobStatus,
    ResolvedJob,
)
from repro.service.queue import JobQueue


class ServiceClosedError(RuntimeError):
    """Submission after :meth:`IntegrationService.shutdown`."""


class _Rotation:
    """A shard's scheduler set, multiplexed over per-backend schedulers.

    A :class:`~repro.batch.BatchScheduler` only accepts runs built on
    its own backend instance, so a shard that routes jobs to different
    backends keeps one scheduler per backend and hands out shard-unique
    member ids.  With a single backend (the pinned-service default) this
    degenerates to exactly one scheduler — the pre-routing behaviour.

    Owned by one shard worker thread; never shared across threads.
    """

    def __init__(self) -> None:
        self._schedulers: Dict[int, BatchScheduler] = {}  # id(backend) ->
        self._by_member: Dict[int, Tuple[BatchScheduler, int]] = {}
        self._next_member = 0

    @property
    def members(self):
        """All schedulers' member slots (retired tombstones included)."""
        return [
            run
            for sched in self._schedulers.values()
            for run in sched.members
        ]

    def add(self, run) -> int:
        """Enrol a run with the scheduler of its backend; shard-unique id."""
        key = id(run.backend)
        sched = self._schedulers.get(key)
        if sched is None:
            sched = BatchScheduler(backend=run.backend)
            self._schedulers[key] = sched
        index = sched.add(run)
        member_id = self._next_member
        self._next_member += 1
        self._by_member[member_id] = (sched, index)
        return member_id

    def member(self, member_id: int):
        sched, index = self._by_member[member_id]
        return sched.member(index)

    def abandon_member(self, member_id: int) -> None:
        sched, index = self._by_member[member_id]
        sched.abandon_member(index)

    def retire_member(self, member_id: int) -> None:
        sched, index = self._by_member.pop(member_id)
        sched.retire_member(index)

    def run_round(self, only: Sequence[int]) -> Dict[int, BaseException]:
        """One fused round per involved scheduler; failures by member id."""
        by_sched: Dict[int, Tuple[BatchScheduler, List[int]]] = {}
        for member_id in only:
            sched, _ = self._by_member[member_id]
            by_sched.setdefault(id(sched), (sched, []))[1].append(member_id)
        failures: Dict[int, BaseException] = {}
        for sched, member_ids in by_sched.values():
            reverse = {
                self._by_member[m][1]: m for m in member_ids
            }
            try:
                sched.run_round(only=list(reverse))
            except BatchMemberError as exc:
                for index, error in exc.failures.items():
                    failures[reverse[index]] = error
        return failures


class _Shard:
    """One worker rotation: schedulers + backend instances for one worker.

    All tables are keyed by the shard-local rotation member id.
    ``members``/``followers``/``weights``/``member_fp`` are read and
    written across threads (stats, cross-shard coalescing) and are only
    touched under the service condition lock; ``credits``/``resolved``/
    ``routed`` are private to the owning worker thread.

    ``backend`` is the shard's *default* instance (every job, absent
    routing); ``extras`` caches shard-owned instances for routed /
    per-job-override backend specs, so repeat decisions reuse pools.
    """

    __slots__ = (
        "index", "backend", "scheduler", "members", "resolved", "weights",
        "credits", "followers", "member_fp", "routed", "extras", "thread",
    )

    def __init__(self, index: int, backend: ArrayBackend):
        self.index = index
        self.backend = backend
        self.scheduler = _Rotation()
        self.members: Dict[int, JobHandle] = {}
        self.resolved: Dict[int, ResolvedJob] = {}
        self.weights: Dict[int, int] = {}
        self.credits: Dict[int, float] = {}
        self.followers: Dict[int, List[JobHandle]] = {}
        self.member_fp: Dict[int, str] = {}
        #: member id -> (resolved backend name, admit perf_counter) for
        #: feeding observed sweep timings back to the router
        self.routed: Dict[int, Tuple[str, float]] = {}
        #: spec string -> shard-owned backend instance (routing/override)
        self.extras: Dict[str, ArrayBackend] = {}
        self.thread: Optional[threading.Thread] = None


class IntegrationService:
    """Accepts, schedules, caches and executes integration jobs.

    Parameters
    ----------
    max_concurrent:
        Live runs admitted into *each shard's* rotation at once (so at
        most ``shards * max_concurrent`` runs are live).  Queued jobs
        wait in priority order for a slot; cache hits and coalesced jobs
        do not consume slots.
    backend:
        Execution backend for every run (spec or instance).  With
        ``shards > 1`` a *spec string* gives every shard its own fresh
        backend instance (its own pool — this is what lets shards
        execute truly concurrently); a shared :class:`ArrayBackend`
        instance is honoured but serialises the shards on one pool.
        ``"auto"`` enables per-job routing: every admitted job is scored
        by a :class:`~repro.backends.routing.BackendRouter` (seeded from
        the committed bench priors, refined by this service's observed
        timings, pool width autotuned at start on multi-core hosts) and
        runs on the cheapest adequate backend; its fingerprint records
        the backend it actually ran on.  A job's own ``JobSpec.backend``
        always wins over both the pinned spec and the router.
    shards:
        Number of worker rotations (default 1 — the pre-sharding
        behaviour, byte for byte).  Each shard owns one
        :class:`~repro.batch.BatchScheduler` and one backend instance;
        all shards pull from the shared queue and cache.
    cache:
        ``True`` (default) builds a :class:`ResultCache` of
        ``cache_entries`` slots; ``False`` disables caching; an existing
        :class:`ResultCache` instance is shared (e.g. across services).
    cache_entries:
        LRU capacity when ``cache=True``.
    chunk_budget:
        Per-run evaluate-chunk grain.  Default: the backend's
        ``preferred_batch_chunk_budget`` when it declares one, else the
        reference budget — on the numpy backend service results are
        bit-identical to plain :func:`repro.api.integrate` calls.
    collect_traces:
        Keep per-iteration traces on results (off by default: a serving
        system should not grow unbounded trace lists into its cache).
    history_limit:
        Retain at most this many *terminal* handles in :meth:`jobs`
        (oldest pruned first; live handles are always retained and
        clients of course keep their own references).  ``None``
        (default) keeps everything — right for one-shot job lists;
        long-running services should set a bound so memory does not
        grow with total jobs served.  :meth:`stats` counts pruned jobs
        via lifetime counters either way.
    escalation:
        Service-default baseline-escalation policy — anything
        :meth:`~repro.service.escalation.EscalationPolicy.parse`
        accepts (``None`` = off, ``True``/``"default"``, a ladder
        descriptor, or a policy instance).  When a job's PAGANI run
        ends in ``MEMORY_EXHAUSTED`` (or trips the iteration watchdog)
        the worker re-runs it down the baseline ladder and resolves the
        handle with the escalated result — full per-stage history in
        ``result.escalation``, never relabeled as a converged PAGANI
        run.  Per-job ``JobSpec.escalation`` overrides the default
        (``"off"`` disables).  The effective policy descriptor enters
        the job's cache fingerprint, so escalated and native results
        never alias.

    Usage::

        with IntegrationService(max_concurrent=4) as svc:
            fast = svc.submit("5D-f4", rel_tol=1e-4, priority=4)
            slow = svc.submit("8D-f7", rel_tol=1e-4, priority=1)
            print(fast.result().estimate)
    """

    def __init__(
        self,
        max_concurrent: int = 4,
        backend: BackendLike = None,
        cache: Union[bool, ResultCache] = True,
        cache_entries: int = 256,
        chunk_budget: Optional[int] = None,
        collect_traces: bool = False,
        history_limit: Optional[int] = None,
        shards: int = 1,
        routing_autotune: bool = True,
        escalation=None,
    ):
        if max_concurrent < 1:
            raise ConfigurationError("max_concurrent must be >= 1")
        self.escalation = EscalationPolicy.parse(escalation)
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if history_limit is not None and history_limit < 0:
            raise ConfigurationError("history_limit must be >= 0 or None")
        self.history_limit = history_limit
        self.max_concurrent = int(max_concurrent)
        self._chunk_budget_override = chunk_budget
        self._router = None
        if isinstance(backend, str) and backend == "auto":
            from repro.backends.routing import BackendRouter

            self._router = BackendRouter()
            if routing_autotune:
                # Width probe at service start: measure real pool widths
                # instead of trusting cpu_count (no-op on 1-CPU hosts).
                self._router.autotune_width()
            # Routed shards still need a default instance: it anchors
            # the reference chunk budget and serves as the fallback when
            # a routed spec fails to build.  numpy is always adequate.
            backend = "numpy"
        if shards == 1 or isinstance(backend, ArrayBackend):
            # One shard keeps the classic shared-instance resolution; an
            # explicit instance is shared across shards by request.
            # Neither is owned by this service (shared/caller-owned), so
            # shutdown must not close them.
            shard_backends = [get_backend(backend)] * shards
            self._owned_backends: List[ArrayBackend] = []
        else:
            shard_backends = [new_backend(backend) for _ in range(shards)]
            self._owned_backends = list(shard_backends)
        self.backend = shard_backends[0]
        if isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        elif cache:
            self.cache = ResultCache(max_entries=cache_entries)
        else:
            self.cache = None
        self.chunk_budget = PaganiConfig.resolve_chunk_budget(
            self.backend, chunk_budget
        )
        self.collect_traces = collect_traces

        self._queue = JobQueue()
        self._cond = threading.Condition()
        self._stopping = False
        self._worker_error: Optional[BaseException] = None

        #: fingerprint -> (shard, member index) of the in-flight primary
        self._inflight: Dict[str, Tuple[_Shard, int]] = {}
        self._rounds = 0
        self._coalesced = 0
        self._escalations = 0
        self._completion_counter = 0

        self._handles: List[JobHandle] = []
        self._pruned_by_status = {status.value: 0 for status in JobStatus}
        self._next_id = 0

        self._shards = [
            _Shard(i, bk) for i, bk in enumerate(shard_backends)
        ]
        for shard in self._shards:
            shard.thread = threading.Thread(
                target=self._run_loop, args=(shard,),
                name=f"integration-service-{shard.index}", daemon=True,
            )
            shard.thread.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """Number of worker rotations serving the queue."""
        return len(self._shards)

    def submit(
        self,
        integrand: Union[str, Callable[[np.ndarray], np.ndarray]],
        ndim: Optional[int] = None,
        *,
        bounds: Optional[Sequence[Sequence[float]]] = None,
        rel_tol: float = 1e-3,
        abs_tol: float = 1e-20,
        priority: int = 1,
        label: Optional[str] = None,
        max_iterations: Optional[int] = None,
        relerr_filtering: Optional[bool] = None,
        backend: Optional[str] = None,
        escalation=None,
    ) -> JobHandle:
        """Enqueue one job; returns its future-like :class:`JobHandle`.

        ``backend`` is the per-job override spec (see
        :class:`~repro.service.jobs.JobSpec`); ``None`` defers to the
        service's backend or routing policy.  ``escalation`` likewise
        overrides the service's escalation policy for this job
        (``None`` inherits, ``"off"`` disables).
        """
        return self.submit_spec(
            JobSpec(
                integrand=integrand, ndim=ndim, bounds=bounds,
                rel_tol=rel_tol, abs_tol=abs_tol, priority=priority,
                label=label, max_iterations=max_iterations,
                relerr_filtering=relerr_filtering, backend=backend,
                escalation=escalation,
            )
        )

    def submit_spec(self, spec: JobSpec) -> JobHandle:
        """Enqueue a prepared :class:`JobSpec` (validated eagerly)."""
        spec.validate()
        with self._cond:
            if self._stopping:
                raise ServiceClosedError("service is shut down")
            if self._worker_error is not None:
                raise ServiceClosedError(
                    f"service worker died: {self._worker_error!r}"
                )
            handle = JobHandle(self._next_id, spec)
            self._next_id += 1
            self._handles.append(handle)
            self._queue.push(handle)
            self._cond.notify_all()
        return handle

    def submit_many(self, specs: Sequence[JobSpec]) -> List[JobHandle]:
        return [self.submit_spec(s) for s in specs]

    def jobs(self) -> List[JobHandle]:
        """Retained handles in submission order (all of them unless a
        ``history_limit`` pruned old terminal ones)."""
        with self._cond:
            return list(self._handles)

    def wait_all(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job is terminal; False on timeout."""
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        for handle in self.jobs():
            remaining = (
                None if deadline is None else max(0.0, deadline - _time.monotonic())
            )
            if not handle.wait(remaining):
                return False
        return True

    def queue_depth(self) -> int:
        """Jobs currently waiting for a rotation slot (admission gate
        for front ends: compare against a bound before accepting)."""
        with self._cond:
            return len(self._queue)

    def stats(self) -> dict:
        """Snapshot of queue/rotation/cache counters.

        This is the one public observability surface: the HTTP
        ``/metrics`` endpoint, the CLI serve report and the asyncio
        wrapper all serve this dict verbatim, so additions here must be
        additive (existing keys keep their meaning).
        """
        with self._cond:
            handles = list(self._handles)
            rounds = self._rounds
            coalesced = self._coalesced
            escalations = self._escalations
            queued = len(self._queue)
            inflight = len(self._inflight)
            per_shard = [
                {
                    "shard": shard.index,
                    "live": len(shard.members),
                    "followers": sum(
                        len(f) for f in shard.followers.values()
                    ),
                    "utilization": len(shard.members) / self.max_concurrent,
                }
                for shard in self._shards
            ]
            running = sum(
                s["live"] + s["followers"] for s in per_shard
            )
            by_status = dict(self._pruned_by_status)
        n_pruned = sum(by_status.values())
        for h in handles:
            by_status[h.status.value] += 1
        return {
            "submitted": len(handles) + n_pruned,
            "by_status": by_status,
            "queued": queued,
            "running": running,
            "inflight": inflight,
            "rounds": rounds,
            "coalesced": coalesced,
            "escalations": escalations,
            "escalation": (
                self.escalation.describe()
                if self.escalation is not None
                else None
            ),
            "max_concurrent": self.max_concurrent,
            "backend": "auto" if self._router is not None else self.backend.name,
            "routing": (
                self._router.stats() if self._router is not None else None
            ),
            "shards": len(self._shards),
            "per_shard": per_shard,
            "cache": self.cache.stats() if self.cache is not None else None,
        }

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting jobs; optionally drop the still-queued ones.

        With ``wait=True`` (default) blocks until the workers drained
        everything already submitted — running jobs always finish,
        queued jobs finish unless ``cancel_pending``.
        """
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if cancel_pending:
            for handle in self._queue.snapshot():
                handle.cancel()
            with self._cond:
                self._cond.notify_all()
        if wait:
            for shard in self._shards:
                shard.thread.join()
            # Release the pools of backends this service built (fresh
            # per-shard instances and any routed/override extras);
            # shared/caller-owned backends are untouched.  close() is
            # idempotent, so repeated shutdowns are safe.
            extras = [
                bk for shard in self._shards for bk in shard.extras.values()
            ]
            for bk in self._owned_backends + extras:
                close = getattr(bk, "close", None)
                if close is not None:
                    close()

    def __enter__(self) -> "IntegrationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Worker loop (one thread per shard)
    # ------------------------------------------------------------------
    def _run_loop(self, shard: _Shard) -> None:
        try:
            while True:
                with self._cond:
                    while (
                        not self._stopping
                        and self._worker_error is None
                        and len(self._queue) == 0
                        and not shard.members
                    ):
                        self._cond.wait()
                    if self._worker_error is not None:
                        # A sibling shard died: abandon this shard's live
                        # runs (their handles were already failed) and
                        # stop serving.
                        for index in list(shard.members):
                            shard.scheduler.abandon_member(index)
                        return
                    if (
                        self._stopping
                        and len(self._queue) == 0
                        and not shard.members
                    ):
                        return
                self._process_cancellations(shard)
                self._admit(shard)
                self._serve_round(shard)
                self._prune_history()
        except BaseException as exc:  # the rotation must never die silently
            self._die(exc)

    def _prune_history(self) -> None:
        """Drop the oldest terminal handles beyond ``history_limit``.

        Amortised: runs only once the retained list exceeds twice the
        limit, so the workers do not rescan history every round.
        """
        limit = self.history_limit
        if limit is None:
            return
        with self._cond:
            if len(self._handles) <= max(2 * limit, limit + 16):
                return
            terminal = [h for h in self._handles if h.status.terminal]
            excess = len(terminal) - limit
            if excess <= 0:
                return
            dropped = set()
            for h in terminal[:excess]:
                self._pruned_by_status[h.status.value] += 1
                dropped.add(h.job_id)
            self._handles = [
                h for h in self._handles if h.job_id not in dropped
            ]

    def _die(self, exc: BaseException) -> None:
        with self._cond:
            self._worker_error = exc
            self._stopping = True
            self._cond.notify_all()
        for handle in self.jobs():
            if not handle.done:
                handle._complete(JobStatus.FAILED, exception=exc)

    # ------------------------------------------------------------------
    def _job_policy(self, spec: JobSpec) -> Optional[EscalationPolicy]:
        """The effective escalation policy for a job (``None`` = off)."""
        if spec.escalation is None:
            return self.escalation
        if spec.escalation == "off":
            return None
        return EscalationPolicy.parse(spec.escalation)

    def _job_backend(
        self, shard: _Shard, spec: JobSpec, resolved: ResolvedJob
    ) -> Tuple[ArrayBackend, int]:
        """The backend instance + chunk grain this job runs on.

        Per-job ``spec.backend`` overrides always win; an ``auto``
        service routes the rest; a pinned service runs them on the
        shard default.  Instances for non-default specs are built once
        per shard and reused (``shard.extras``), so routed jobs keep
        warm pools exactly like pinned ones.
        """
        override = spec.backend if spec.backend != "auto" else None
        if self._router is not None:
            target: Optional[str] = self._router.decide(
                ndim=resolved.ndim, rel_tol=spec.rel_tol, override=override,
                context="batch",  # jobs execute through the rotation
            ).backend
        else:
            # On a pinned service an explicit "auto" defers to the pin —
            # the service is the routing decision.
            target = override
        if target is None:
            return shard.backend, self.chunk_budget
        backend = shard.extras.get(target)
        if backend is None:
            if target == shard.backend.name:
                backend = shard.backend  # routed to the default: reuse
            else:
                backend = new_backend(target)
            shard.extras[target] = backend
        budget = PaganiConfig.resolve_chunk_budget(
            backend, self._chunk_budget_override
        )
        return backend, budget

    def _admit(self, shard: _Shard) -> None:
        """Fill the shard's free rotation slots (cache/coalesce first)."""
        while len(shard.members) < self.max_concurrent:
            handle = self._queue.pop()
            if handle is None:
                return
            if not handle._try_start():
                continue  # cancelled between pop and start
            spec = handle.spec
            try:
                resolved = spec.resolve()
                run_backend, chunk_budget = self._job_backend(
                    shard, spec, resolved
                )
                policy = self._job_policy(spec)
            except Exception as exc:
                self._finish(handle, JobStatus.FAILED, exception=exc)
                continue

            fingerprint = None
            if self.cache is not None and resolved.cache_id is not None:
                # The *resolved* backend (and its grain) is hashed, never
                # the "auto" policy: cache identity must describe the
                # bits, and two routers may decide differently.  The
                # effective escalation descriptor is hashed for the same
                # reason: an armed ladder can change the numbers.
                fingerprint = job_fingerprint(
                    integrand_id=resolved.cache_id,
                    ndim=resolved.ndim,
                    bounds=resolved.bounds,
                    rel_tol=spec.rel_tol,
                    abs_tol=spec.abs_tol,
                    backend=run_backend.name,
                    chunk_budget=chunk_budget,
                    max_iterations=spec.max_iterations,
                    relerr_filtering=resolved.relerr_filtering,
                    collect_traces=self.collect_traces,
                    escalation=(
                        policy.describe() if policy is not None else None
                    ),
                )
                handle.stats.fingerprint = fingerprint
                cached = self.cache.get(fingerprint)
                if cached is not None:
                    handle.stats.cache_hit = True
                    self._finish(handle, JobStatus.DONE, result=cached)
                    continue
                # Cross-shard coalescing: the in-flight map and the
                # twin's follower/weight tables only change under the
                # condition lock, so the twin cannot finish (and drain
                # its followers) between the lookup and the append.
                with self._cond:
                    twin = self._inflight.get(fingerprint)
                    if twin is not None:
                        twin_shard, twin_index = twin
                        twin_handle = twin_shard.members[twin_index]
                        handle.stats.cache_hit = True
                        handle.stats.coalesced_with = twin_handle.job_id
                        twin_shard.followers[twin_index].append(handle)
                        # The shared run now serves this job too: it must
                        # rotate at the *most urgent* attached priority,
                        # or a high-priority duplicate would crawl at its
                        # twin's rate.
                        twin_shard.weights[twin_index] = max(
                            twin_shard.weights[twin_index], spec.priority
                        )
                        self._coalesced += 1
                        continue

            # The job's numerical options and integrate()'s kwargs meet
            # in IntegrationRequest, so service runs and API runs build
            # their PaganiConfig through the same code path.
            cfg = spec.to_request().to_pagani_config(
                resolved.fn, backend=run_backend, chunk_budget=chunk_budget
            )
            if policy is not None and spec.max_iterations is None:
                # the stall watchdog: bound the PAGANI attempt so a
                # non-converging run reaches the ladder promptly
                cfg.max_iterations = min(
                    cfg.max_iterations, policy.watchdog_iterations
                )
            try:
                run = PaganiIntegrator(cfg).start_run(
                    resolved.fn, resolved.ndim, bounds=resolved.bounds,
                    collect_trace=self.collect_traces,
                )
            except Exception as exc:
                self._finish(handle, JobStatus.FAILED, exception=exc)
                continue
            index = shard.scheduler.add(run)
            if self._router is not None:
                import time as _time

                shard.routed[index] = (run_backend.name, _time.monotonic())
            # Member/follower tables are read by stats() and sibling
            # shards; every structural mutation happens under the lock.
            with self._cond:
                shard.members[index] = handle
                shard.followers[index] = []
                shard.weights[index] = spec.priority
                if fingerprint is not None:
                    shard.member_fp[index] = fingerprint
                    self._inflight[fingerprint] = (shard, index)
            shard.resolved[index] = resolved
            shard.credits[index] = 0.0

    # ------------------------------------------------------------------
    def _serve_round(self, shard: _Shard) -> None:
        """One weighted rotation round over the shard's live members."""
        with self._cond:
            live = sorted(shard.members)
            weights = {i: shard.weights[i] for i in live}
        if not live:
            return
        # Weighted round-robin: credit grows by priority; members at the
        # threshold are served and pay it back.  The highest-priority
        # member is served every round; a priority-p member every
        # ceil(w_max / p) rounds — service rate ∝ priority.
        w_max = max(weights[i] for i in live)
        serve = []
        for i in live:
            shard.credits[i] += weights[i]
            if shard.credits[i] >= w_max:
                shard.credits[i] -= w_max
                serve.append(i)

        failures = shard.scheduler.run_round(only=serve)
        with self._cond:
            self._rounds += 1
        for i in serve:
            handle = shard.members.get(i)
            if handle is None:
                continue
            handle.stats.rounds_served += 1
            if i in failures:
                self._finish_member(shard, i, error=failures[i])
            elif shard.scheduler.member(i).finished:
                self._finish_member(shard, i)

    # ------------------------------------------------------------------
    def _process_cancellations(self, shard: _Shard) -> None:
        """Apply pending cancel requests to the shard's members/followers."""
        for index in list(shard.members):
            handle = shard.members[index]
            if handle.cancel_requested and not handle.done:
                shard.scheduler.abandon_member(index)
                self._finish_member(shard, index, cancelled=True)
        cancelled_followers = []
        with self._cond:
            for followers in shard.followers.values():
                for follower in list(followers):
                    if follower.cancel_requested and not follower.done:
                        followers.remove(follower)
                        cancelled_followers.append(follower)
        for follower in cancelled_followers:
            follower._complete(JobStatus.CANCELLED, exception=CancelledError())

    # ------------------------------------------------------------------
    def _finish_member(
        self,
        shard: _Shard,
        index: int,
        error: Optional[BaseException] = None,
        cancelled: bool = False,
    ) -> None:
        """Retire rotation member ``index`` and resolve its handles."""
        if error is None and not cancelled:
            self._finish_member_done(shard, index)
            return
        with self._cond:
            handle = shard.members.pop(index)
            followers = shard.followers.pop(index)
            shard.weights.pop(index)
            fingerprint = shard.member_fp.pop(index, None)
            if (
                fingerprint is not None
                and self._inflight.get(fingerprint) == (shard, index)
            ):
                self._inflight.pop(fingerprint)
        shard.resolved.pop(index)
        shard.credits.pop(index)
        shard.routed.pop(index, None)

        if cancelled:
            handle._complete(JobStatus.CANCELLED, exception=CancelledError())
            # Followers coalesced onto a cancelled run still want their
            # result: back to the queue for a fresh slot.  They are no
            # longer being served without recomputation, so the
            # coalescing marks come off before the retry.
            requeued = False
            for follower in followers:
                if follower._back_to_queue():
                    follower.stats.cache_hit = False
                    follower.stats.coalesced_with = None
                    self._queue.push(follower)
                    requeued = True
            if requeued:
                with self._cond:
                    self._cond.notify_all()
            shard.scheduler.retire_member(index)
            return
        # error is not None: deterministic integrand failure — the
        # coalesced twins would fail identically, so fail them now
        # instead of re-running.
        self._finish(handle, JobStatus.FAILED, exception=error)
        for follower in followers:
            self._finish(follower, JobStatus.FAILED, exception=error)
        shard.scheduler.retire_member(index)

    def _finish_member_done(self, shard: _Shard, index: int) -> None:
        """Successful completion: publish, then drop the member tables.

        The cache write and the in-flight/member removals happen in one
        locked section so a duplicate admitted on any shard finds either
        the in-flight entry (and coalesces) or the cache entry (and
        replays) — never neither.  Followers appended up to the moment
        the lock is taken are resolved with the result below.
        """
        result = shard.scheduler.member(index).result
        # Retire the member immediately: a long-lived rotation must not
        # pin every finished run (and its result/trace) forever.
        shard.scheduler.retire_member(index)
        resolved = shard.resolved.pop(index)
        shard.credits.pop(index)
        routed = shard.routed.pop(index, None)
        if routed is not None and self._router is not None:
            import time as _time

            name, admitted_at = routed
            self._router.observe(
                name, result.neval, _time.monotonic() - admitted_at
            )
        if resolved.reference is not None:
            result.true_value = resolved.reference
        handle_peek = shard.members[index]
        policy = self._job_policy(handle_peek.spec)
        escalation_cancelled = False
        if policy is not None and policy.should_escalate(result):
            # Re-run down the baseline ladder on this worker thread (a
            # recovery path — blocking the rotation briefly is the
            # honest price of not returning a failed result).  The
            # cancel check stops the ladder between stages; a ladder
            # stopped that way yields a *partial* outcome, which must
            # not enter the cache or resolve coalesced followers.
            result = policy.apply(
                resolved.fn,
                resolved.ndim,
                handle_peek.spec.to_request(),
                result,
                bounds=resolved.bounds,
                cancel_check=lambda: handle_peek.cancel_requested,
            )
            if resolved.reference is not None:
                result.true_value = resolved.reference
            escalation_cancelled = handle_peek.cancel_requested
            with self._cond:
                self._escalations += 1
        with self._cond:
            fingerprint = shard.member_fp.pop(index, None)
            if (
                fingerprint is not None
                and self.cache is not None
                and not escalation_cancelled
            ):
                self.cache.put(fingerprint, result)
            handle = shard.members.pop(index)
            followers = shard.followers.pop(index)
            shard.weights.pop(index)
            if (
                fingerprint is not None
                and self._inflight.get(fingerprint) == (shard, index)
            ):
                self._inflight.pop(fingerprint)
        if escalation_cancelled:
            handle._complete(JobStatus.CANCELLED, exception=CancelledError())
            # Followers wanted the full ladder outcome, not the partial
            # one a cancelled ladder produced: back to the queue, same
            # as followers of a cancelled run.
            requeued = False
            for follower in followers:
                if follower._back_to_queue():
                    follower.stats.cache_hit = False
                    follower.stats.coalesced_with = None
                    self._queue.push(follower)
                    requeued = True
            if requeued:
                with self._cond:
                    self._cond.notify_all()
            return
        if result.escalated:
            handle.stats.escalated = True
        self._finish(handle, JobStatus.DONE, result=result)
        for follower in followers:
            if result.escalated:
                follower.stats.escalated = True
            self._finish(
                follower, JobStatus.DONE, result=copy.deepcopy(result)
            )

    def _finish(self, handle: JobHandle, status: JobStatus, **kwargs) -> None:
        if status in (JobStatus.DONE, JobStatus.FAILED):
            with self._cond:
                handle.stats.completion_index = self._completion_counter
                self._completion_counter += 1
        handle._complete(status, **kwargs)
