"""Job model of the integration service.

A **job** is one integration request: an integrand (named spec string or
batch callable), a domain, tolerances, and a scheduling priority.  Jobs
travel through the service as :class:`JobSpec` (the immutable request),
become :class:`JobHandle` on submission (the future-like object the
client keeps), and finish in one of the terminal :class:`JobStatus`
states.

Lifecycle::

    QUEUED ──admitted──▶ RUNNING ──converged/terminal──▶ DONE
       │                    │──integrand raised────────▶ FAILED
       └──cancel()──────────┴──cancel()────────────────▶ CANCELLED

``QUEUED → CANCELLED`` is synchronous (the job never runs); cancelling a
``RUNNING`` job is asynchronous — the worker abandons the run before its
next rotation round and the handle then reports ``CANCELLED``.
"""

from __future__ import annotations

import enum
import threading
import time
from concurrent.futures import CancelledError
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.result import IntegrationResult
from repro.errors import ConfigurationError
from repro.integrands.catalog import canonical_spec, named_integrand


class JobFailedError(RuntimeError):
    """Raised by :meth:`JobHandle.result` when the job's integrand raised.

    The original exception is chained as ``__cause__``.
    """


class JobStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """One integration request.

    ``integrand`` is either a named spec string (``"5D-f4"``,
    ``"6D-genz-gaussian"`` — see :mod:`repro.integrands.catalog`) or a
    batch callable ``(N, ndim) -> (N,)``.  Only jobs with a stable
    integrand identity participate in the result cache: named specs get
    one automatically; a custom callable opts in by carrying a
    ``cache_key`` string attribute that the caller promises identifies
    the function's mathematical content.

    ``priority`` is a positive integer; larger runs sooner *and* faster
    (admission order and a priority-proportional share of the rotation —
    see ``docs/service.md``).

    ``backend`` is a per-job execution override: a spec string like
    ``"numpy"`` or ``"process:4"`` pins this job regardless of the
    service's backend (the escape hatch of the ``auto`` routing policy),
    ``"auto"`` asks for routing explicitly, ``None`` (default) defers to
    the service.  The cache fingerprint records the backend the job
    actually ran on, so overrides cannot alias cache entries.

    ``escalation`` is the per-job baseline-escalation override: ``None``
    (default) inherits the service's policy, ``"off"``/``False``
    disables escalation for this job, and ``True``/``"default"``/a
    ladder descriptor like ``"two_phase>vegas>qmc;watchdog=8"`` enables
    it (see :class:`repro.service.escalation.EscalationPolicy`).  The
    value is canonicalised to the policy descriptor at construction;
    the effective policy's descriptor enters the cache fingerprint, so
    escalated and native results never alias.
    """

    integrand: Union[str, Callable[[np.ndarray], np.ndarray]]
    ndim: Optional[int] = None
    bounds: Optional[Sequence[Sequence[float]]] = None
    rel_tol: float = 1e-3
    abs_tol: float = 1e-20
    priority: int = 1
    label: Optional[str] = None
    max_iterations: Optional[int] = None
    relerr_filtering: Optional[bool] = None
    backend: Optional[str] = None
    escalation: Union[None, bool, str] = None

    _FIELDS = (
        "integrand", "ndim", "bounds", "rel_tol", "abs_tol", "priority",
        "label", "max_iterations", "relerr_filtering", "backend",
        "escalation",
    )

    def __post_init__(self) -> None:
        # Canonicalise the escalation override: None stays None
        # (inherit), everything else becomes "off" or the policy's
        # canonical descriptor — value semantics for coalescing and
        # fingerprints.  Malformed values raise here, at construction.
        if self.escalation is not None:
            from repro.service.escalation import EscalationPolicy

            policy = EscalationPolicy.parse(self.escalation)
            object.__setattr__(
                self, "escalation", policy.describe() if policy else "off"
            )

    def validate(self) -> None:
        if not (isinstance(self.priority, int) and self.priority >= 1):
            raise ConfigurationError(
                f"priority must be a positive integer, got {self.priority!r}"
            )
        if self.backend is not None and not isinstance(self.backend, str):
            raise ConfigurationError(
                "job backend must be a spec string like 'numpy', "
                f"'process:4' or 'auto', got {self.backend!r}"
            )
        if not (0.0 < self.rel_tol < 1.0):
            raise ConfigurationError(
                f"rel_tol must be in (0, 1), got {self.rel_tol}"
            )
        if self.abs_tol < 0.0:
            raise ConfigurationError("abs_tol must be non-negative")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        """Build a spec from one ``jobs.json`` entry (strict keys)."""
        unknown = set(data) - set(cls._FIELDS)
        if unknown:
            raise ConfigurationError(
                f"unknown job keys {sorted(unknown)}; allowed: "
                f"{list(cls._FIELDS)}"
            )
        if "integrand" not in data:
            raise ConfigurationError("job entry needs an 'integrand' spec")
        if not isinstance(data["integrand"], str):
            raise ConfigurationError(
                "jobs-file integrands must be named specs like '5D-f4'"
            )
        try:
            canonical_spec(data["integrand"])
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from None
        spec = cls(**data)
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """Round-trippable dict for jobs files (named integrands only)."""
        if not isinstance(self.integrand, str):
            raise ConfigurationError(
                "only named-integrand jobs serialise to a jobs file"
            )
        out: Dict[str, Any] = {"integrand": self.integrand}
        for key in self._FIELDS[1:]:
            if key == "bounds":
                continue  # arrays don't compare to None; handled below
            value = getattr(self, key)
            if value is not None and value != JobSpec.__dataclass_fields__[key].default:
                out[key] = value
        if self.bounds is not None:
            out["bounds"] = [list(map(float, b)) for b in self.bounds]
        return out

    # ------------------------------------------------------------------
    @classmethod
    def from_request(
        cls,
        integrand: Union[str, Callable[[np.ndarray], np.ndarray]],
        request: "Any",
        *,
        ndim: Optional[int] = None,
        priority: int = 1,
        label: Optional[str] = None,
    ) -> "JobSpec":
        """Build a job from an :class:`repro.api.IntegrationRequest`.

        The request carries the numerical options shared with
        :func:`repro.api.integrate`; the job adds the service-side
        identity (integrand, priority, label).  A live
        :class:`~repro.backends.base.ArrayBackend` in ``request.backend``
        is flattened to its spec string so the job stays serialisable.
        """
        from repro.backends import resolve_backend

        if request.method != "pagani":
            raise ConfigurationError(
                "the job service runs the PAGANI loop; got "
                f"method={request.method!r}"
            )
        backend = request.backend
        if backend is not None and not isinstance(backend, str):
            backend = resolve_backend(backend).spec
        spec = cls(
            integrand=integrand,
            ndim=ndim,
            bounds=request.bounds,
            rel_tol=request.rel_tol,
            abs_tol=request.abs_tol,
            priority=priority,
            label=label,
            max_iterations=request.max_iterations,
            relerr_filtering=request.relerr_filtering,
            backend=backend,
            # a request is explicit: no escalation means "off", not
            # "inherit the service default"
            escalation=request.escalation if request.escalation else "off",
        )
        spec.validate()
        return spec

    def to_request(self) -> "Any":
        """The :class:`repro.api.IntegrationRequest` view of this job.

        Inverse of :meth:`from_request` for the shared numerical fields;
        the service-only fields (integrand, priority, label) do not
        travel.
        """
        from repro.api import IntegrationRequest  # circular at import time

        return IntegrationRequest(
            bounds=self.bounds,
            rel_tol=self.rel_tol,
            abs_tol=self.abs_tol,
            backend=self.backend,
            max_iterations=self.max_iterations,
            relerr_filtering=self.relerr_filtering,
            escalation=(
                self.escalation
                if self.escalation not in (None, "off")
                else None
            ),
        )

    # ------------------------------------------------------------------
    def resolve(self) -> "ResolvedJob":
        """Materialise the callable, domain and cache identity."""
        self.validate()
        if isinstance(self.integrand, str):
            try:
                cache_id: Optional[str] = canonical_spec(self.integrand)
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from None
            fn: Callable = named_integrand(cache_id)
            ndim = int(getattr(fn, "ndim"))
            if self.ndim is not None and int(self.ndim) != ndim:
                raise ConfigurationError(
                    f"spec {self.integrand!r} is {ndim}-dimensional but the "
                    f"job says ndim={self.ndim}"
                )
        else:
            fn = self.integrand
            ndim = self.ndim if self.ndim is not None else getattr(fn, "ndim", None)
            if ndim is None:
                raise ConfigurationError(
                    "callable integrands need ndim= (or an 'ndim' attribute)"
                )
            ndim = int(ndim)
            key = getattr(fn, "cache_key", None)
            cache_id = f"custom:{key}" if isinstance(key, str) else None

        if self.bounds is None:
            bounds = np.array([(0.0, 1.0)] * ndim, dtype=np.float64)
        else:
            bounds = np.asarray(self.bounds, dtype=np.float64)
            if bounds.shape != (ndim, 2):
                raise ConfigurationError(
                    f"bounds must have shape ({ndim}, 2), got {bounds.shape}"
                )
        filtering = (
            bool(getattr(fn, "sign_definite", True))
            if self.relerr_filtering is None
            else bool(self.relerr_filtering)
        )
        label = self.label or getattr(fn, "name", "") or (
            cache_id if cache_id else f"job:{getattr(fn, '__name__', 'callable')}"
        )
        ref = getattr(fn, "reference", None)
        return ResolvedJob(
            fn=fn, ndim=ndim, bounds=bounds, cache_id=cache_id, label=label,
            relerr_filtering=filtering,
            reference=float(ref) if ref is not None else None,
        )


@dataclass
class ResolvedJob:
    """A :class:`JobSpec` after integrand/domain resolution."""

    fn: Callable[[np.ndarray], np.ndarray]
    ndim: int
    bounds: np.ndarray
    cache_id: Optional[str]
    label: str
    relerr_filtering: bool
    reference: Optional[float]


@dataclass
class JobStats:
    """Per-job observability (all timestamps are ``time.perf_counter``)."""

    priority: int
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: rotation rounds in which this job's run was served an iteration
    rounds_served: int = 0
    #: served from the result cache (or coalesced onto an in-flight twin)
    cache_hit: bool = False
    #: job id of the in-flight twin this job coalesced onto, if any
    coalesced_with: Optional[int] = None
    #: 0-based position in the service's completion order
    completion_index: Optional[int] = None
    #: cache fingerprint (None for uncacheable callables / cache off)
    fingerprint: Optional[str] = None
    #: the job's PAGANI run failed and a baseline escalation ladder ran
    escalated: bool = False

    @property
    def queue_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def total_seconds(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


class JobHandle:
    """Future-like view of one submitted job.

    Thread-safe: clients block in :meth:`result` / :meth:`wait` while the
    service worker completes the job.  ``add_done_callback`` powers the
    asyncio bridge in :mod:`repro.service.aio`.
    """

    def __init__(self, job_id: int, spec: JobSpec):
        self.job_id = job_id
        self.spec = spec
        self.stats = JobStats(
            priority=spec.priority, submitted_at=time.perf_counter()
        )
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._status = JobStatus.QUEUED
        self._result: Optional[IntegrationResult] = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["JobHandle"], None]] = []
        self._cancel_requested = False

    # ------------------------------------------------------------------
    @property
    def status(self) -> JobStatus:
        with self._lock:
            return self._status

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def cache_hit(self) -> bool:
        return self.stats.cache_hit

    @property
    def cancel_requested(self) -> bool:
        with self._lock:
            return self._cancel_requested

    def __repr__(self) -> str:
        return (
            f"<JobHandle #{self.job_id} {self.spec.label or self.spec.integrand!r} "
            f"{self.status.value}>"
        )

    # ------------------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; False on timeout."""
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> IntegrationResult:
        """The job's :class:`IntegrationResult`.

        Blocks up to ``timeout`` seconds (``None`` = forever).  Raises
        ``TimeoutError`` if the job is not terminal in time,
        ``concurrent.futures.CancelledError`` if it was cancelled, and
        :class:`JobFailedError` (original exception chained) if the
        integrand raised.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job #{self.job_id} not finished within {timeout} s"
            )
        with self._lock:
            if self._exception is not None:
                if isinstance(self._exception, CancelledError):
                    raise self._exception
                raise JobFailedError(
                    f"job #{self.job_id} ({self.spec.label or self.spec.integrand!r}) "
                    "failed"
                ) from self._exception
            assert self._result is not None
            return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The job's exception (None when it succeeded); blocks like
        :meth:`result`."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job #{self.job_id} not finished within {timeout} s"
            )
        with self._lock:
            return self._exception

    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation; returns False if already terminal.

        A queued job is cancelled immediately; a running one is
        abandoned by the worker before its next round (``status`` flips
        to ``CANCELLED`` asynchronously — ``wait()`` to observe it).
        """
        with self._lock:
            if self._status.terminal:
                return False
            if self._status is JobStatus.QUEUED:
                self._finish_locked(JobStatus.CANCELLED, exception=CancelledError())
                callbacks = self._drain_callbacks_locked()
            else:
                self._cancel_requested = True
                return True
        self._run_callbacks(callbacks)
        return True

    def add_done_callback(self, fn: Callable[["JobHandle"], None]) -> None:
        """Call ``fn(handle)`` once terminal (immediately if already)."""
        with self._lock:
            if not self._status.terminal:
                self._callbacks.append(fn)
                return
        fn(self)

    # -- service-side transitions --------------------------------------
    def _try_start(self) -> bool:
        """QUEUED → RUNNING; False if the job was cancelled meanwhile."""
        with self._lock:
            if self._status is not JobStatus.QUEUED:
                return False
            self._status = JobStatus.RUNNING
            if self.stats.started_at is None:
                self.stats.started_at = time.perf_counter()
            return True

    def _back_to_queue(self) -> bool:
        """RUNNING → QUEUED (a follower whose primary was cancelled)."""
        with self._lock:
            if self._status is not JobStatus.RUNNING:
                return False
            self._status = JobStatus.QUEUED
            return True

    def _complete(
        self,
        status: JobStatus,
        result: Optional[IntegrationResult] = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            if self._status.terminal:
                return
            self._result = result
            self._finish_locked(status, exception=exception)
            callbacks = self._drain_callbacks_locked()
        self._run_callbacks(callbacks)

    def _finish_locked(
        self, status: JobStatus, exception: Optional[BaseException]
    ) -> None:
        self._status = status
        self._exception = exception
        self.stats.finished_at = time.perf_counter()
        self._event.set()

    def _drain_callbacks_locked(self) -> List[Callable[["JobHandle"], None]]:
        callbacks, self._callbacks = self._callbacks, []
        return callbacks

    def _run_callbacks(self, callbacks: List[Callable[["JobHandle"], None]]) -> None:
        for fn in callbacks:
            try:
                fn(self)
            except Exception:  # callbacks must not kill the worker
                pass
