"""HTTP/JSON front end for the integration service.

Stdlib-only (``http.server``): the reproduction stays installable with
no new dependency while becoming reachable over a network.  See
:class:`HttpIntegrationServer` and ``docs/service.md`` for the endpoint
and error-code contract.
"""

from repro.service.http.server import (
    DEFAULT_MAX_QUEUED,
    HTTP_API_VERSION,
    HttpIntegrationServer,
)

__all__ = [
    "HttpIntegrationServer",
    "HTTP_API_VERSION",
    "DEFAULT_MAX_QUEUED",
]
