"""The HTTP/JSON API over :class:`~repro.service.IntegrationService`.

Endpoints (see ``docs/service.md`` for the full table)::

    POST   /v1/jobs             submit a JobSpec JSON        → 202 / 400 / 429
    GET    /v1/jobs             list tracked jobs            → 200
    GET    /v1/jobs/<id>        job status                   → 200 / 404
    GET    /v1/jobs/<id>/result finished result              → 200 / 409 / 410 / 404 / 500
    DELETE /v1/jobs/<id>        cancel                       → 202 / 409 / 404
    GET    /metrics             service + HTTP counters      → 200
    GET    /healthz             liveness                     → 200

Design notes:

* **Admission control.**  ``POST /v1/jobs`` is rejected with ``429`` and
  a ``Retry-After`` header whenever the service's queue depth has
  reached ``max_queued`` — the bounded queue keeps a traffic burst from
  growing server memory without limit, and pushes backpressure to the
  clients, who are the only ones who can shed load meaningfully.
* **Bit-identical results over the wire.**  ``GET .../result`` carries
  every float twice: a human-readable decimal in ``result`` and the
  exact ``float.hex()`` encoding in ``result_hex`` (the durable-store
  payload of :mod:`repro.service.store`).  Clients that care about the
  reproduction's bit-for-bit replay contract compare ``result_hex``.
* **Threading.**  ``ThreadingHTTPServer`` gives one daemon thread per
  connection; all of them funnel into the one thread-safe
  :class:`~repro.service.IntegrationService`.  The server keeps its own
  ``job_id → handle`` map (guarded by a lock) so HTTP lookups stay O(1)
  and keep working even after the service's ``history_limit`` pruned a
  terminal handle from its own list.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ConfigurationError
from repro.service.jobs import JobHandle, JobSpec, JobStatus
from repro.service.service import IntegrationService, ServiceClosedError
from repro.service.store import result_to_payload

HTTP_API_VERSION = "v1"

#: default bound on the service queue before POSTs are 429-rejected
DEFAULT_MAX_QUEUED = 64

#: request bodies above this are rejected with 413 (a JobSpec is tiny)
MAX_BODY_BYTES = 1 << 20

#: Retry-After seconds suggested on 429 (queue full) and 409 (not ready)
RETRY_AFTER_SECONDS = 1


def _job_status_payload(job_id: int, handle: JobHandle) -> dict:
    stats = handle.stats
    return {
        "job_id": job_id,
        "status": handle.status.value,
        "integrand": (
            handle.spec.integrand
            if isinstance(handle.spec.integrand, str)
            else repr(handle.spec.integrand)
        ),
        "label": handle.spec.label,
        "priority": stats.priority,
        "cache_hit": stats.cache_hit,
        "escalated": stats.escalated,
        "fingerprint": stats.fingerprint,
        "queue_seconds": stats.queue_seconds,
        "total_seconds": stats.total_seconds,
    }


def _result_payload(job_id: int, handle: JobHandle) -> dict:
    result = handle.result(timeout=0)
    hex_payload = result_to_payload(result)
    payload = {
        "job_id": job_id,
        "status": handle.status.value,
        "cache_hit": handle.stats.cache_hit,
        "result": {
            "estimate": result.estimate,
            "errorest": result.errorest,
            "status": result.status.value,
            "neval": result.neval,
            "nregions": result.nregions,
            "iterations": result.iterations,
            "method": result.method,
            "converged": result.converged,
        },
        "result_hex": hex_payload,
    }
    if result.escalation is not None:
        # honest provenance over the wire: every stage the ladder ran,
        # PAGANI first (the exact floats live in result_hex["escalation"])
        payload["escalation"] = [
            {
                "method": stage.method,
                "status": stage.status.value,
                "estimate": stage.estimate,
                "errorest": stage.errorest,
                "neval": stage.neval,
                "error": stage.error,
            }
            for stage in result.escalation
        ]
    return payload


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection's requests to the owning server's app."""

    protocol_version = "HTTP/1.1"
    server_version = "pagani-repro"

    # quiet by default: a load generator would otherwise spam stderr
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass

    @property
    def app(self) -> "HttpIntegrationServer":
        return self.server.app  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def _send_json(
        self,
        code: int,
        payload: dict,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        code: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.app._count("errors")
        self._send_json(code, {"error": message}, headers)

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body over {MAX_BODY_BYTES} bytes")
            return None
        return self.rfile.read(length)

    def _job_from_path(self, job_part: str) -> Optional[Tuple[int, JobHandle]]:
        try:
            job_id = int(job_part)
        except ValueError:
            self._error(404, f"malformed job id {job_part!r}")
            return None
        handle = self.app._lookup(job_id)
        if handle is None:
            self._error(404, f"no such job {job_id}")
            return None
        return job_id, handle

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self.app._count("requests")
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/healthz":
            self._send_json(200, {"ok": True})
        elif path == "/metrics":
            self._send_json(200, self.app.metrics())
        elif path == f"/{HTTP_API_VERSION}/jobs":
            self._send_json(200, {"jobs": self.app._job_list()})
        else:
            parts = path.strip("/").split("/")
            if len(parts) == 3 and parts[:2] == [HTTP_API_VERSION, "jobs"]:
                found = self._job_from_path(parts[2])
                if found is not None:
                    job_id, handle = found
                    self._send_json(
                        200, _job_status_payload(job_id, handle)
                    )
            elif (
                len(parts) == 4
                and parts[:2] == [HTTP_API_VERSION, "jobs"]
                and parts[3] == "result"
            ):
                found = self._job_from_path(parts[2])
                if found is not None:
                    self._get_result(*found)
            else:
                self._error(404, f"no route for GET {path}")

    def _get_result(self, job_id: int, handle: JobHandle) -> None:
        status = handle.status
        if status in (JobStatus.QUEUED, JobStatus.RUNNING):
            self._error(
                409,
                f"job {job_id} is {status.value}; result not ready",
                {"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
        elif status is JobStatus.CANCELLED:
            self._error(410, f"job {job_id} was cancelled")
        elif status is JobStatus.FAILED:
            exc = handle.exception(timeout=0)
            self._error(500, f"job {job_id} failed: {exc!r}")
        else:
            self._send_json(200, _result_payload(job_id, handle))

    def do_POST(self) -> None:  # noqa: N802
        self.app._count("requests")
        path = urlsplit(self.path).path.rstrip("/")
        if path != f"/{HTTP_API_VERSION}/jobs":
            self._error(404, f"no route for POST {path}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            data = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, ValueError):
            self._error(400, "request body is not valid JSON")
            return
        if not isinstance(data, dict):
            self._error(400, "job payload must be a JSON object")
            return
        self.app._submit(self, data)

    def do_DELETE(self) -> None:  # noqa: N802
        self.app._count("requests")
        path = urlsplit(self.path).path.rstrip("/")
        parts = path.strip("/").split("/")
        if len(parts) != 3 or parts[:2] != [HTTP_API_VERSION, "jobs"]:
            self._error(404, f"no route for DELETE {path}")
            return
        found = self._job_from_path(parts[2])
        if found is None:
            return
        job_id, handle = found
        if handle.cancel():
            self._send_json(
                202, {"job_id": job_id, "cancelled": True,
                      "status": handle.status.value}
            )
        else:
            self._error(
                409,
                f"job {job_id} already terminal "
                f"({handle.status.value}); cannot cancel",
            )


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # port 0 tests rebind fast; a crashed server must not wedge the port
    allow_reuse_address = True

    def __init__(self, addr, app: "HttpIntegrationServer"):
        self.app = app
        super().__init__(addr, _Handler)


class HttpIntegrationServer:
    """One HTTP listener bound to one :class:`IntegrationService`.

    Parameters
    ----------
    service:
        The service to expose.  ``owns_service=True`` (the default used
        by :func:`repro.serve_http`) makes :meth:`close` shut it down.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    max_queued:
        Admission bound: a ``POST /v1/jobs`` arriving while the service
        queue already holds this many jobs is rejected with ``429``.
    """

    def __init__(
        self,
        service: IntegrationService,
        host: str = "127.0.0.1",
        port: int = 8053,
        max_queued: int = DEFAULT_MAX_QUEUED,
        owns_service: bool = True,
    ):
        if max_queued < 1:
            raise ConfigurationError("max_queued must be >= 1")
        self.service = service
        self.max_queued = int(max_queued)
        self._owns_service = owns_service
        self._jobs: Dict[int, JobHandle] = {}
        self._lock = threading.Lock()
        self._counters = {"requests": 0, "rejected": 0, "errors": 0}
        self._closed = False
        self._httpd = _Server((host, port), self)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="pagani-http-server",
            daemon=True,
        )
        self._thread.start()

    # -- public --------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should target, e.g. ``http://127.0.0.1:8053``."""
        return f"http://{self.host}:{self.port}"

    def metrics(self) -> dict:
        """The ``/metrics`` payload (also callable in process)."""
        with self._lock:
            http_counters = dict(self._counters)
            http_counters["jobs_tracked"] = len(self._jobs)
        return {
            "service": self.service.stats(),
            "http": http_counters,
            "max_queued": self.max_queued,
        }

    def close(self) -> None:
        """Stop the listener (and the service, when owned).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()
        if self._owns_service:
            self.service.shutdown(wait=True)
            cache = self.service.cache
            close = getattr(cache, "close", None)
            if close is not None:
                close()

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`close` (or Ctrl-C)."""
        try:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)
        except KeyboardInterrupt:
            self.close()

    def __enter__(self) -> "HttpIntegrationServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- handler support -----------------------------------------------
    def _count(self, key: str) -> None:
        with self._lock:
            self._counters[key] += 1

    def _lookup(self, job_id: int) -> Optional[JobHandle]:
        with self._lock:
            return self._jobs.get(job_id)

    def _job_list(self) -> list:
        with self._lock:
            items = sorted(self._jobs.items())
        return [_job_status_payload(jid, h) for jid, h in items]

    def _submit(self, handler: _Handler, data: dict) -> None:
        if self.service.queue_depth() >= self.max_queued:
            self._count("rejected")
            handler._error(
                429,
                f"queue full ({self.max_queued} jobs waiting); retry later",
                {"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
            return
        try:
            spec = JobSpec.from_dict(data)
        except ConfigurationError as exc:
            handler._error(400, str(exc))
            return
        try:
            handle = self.service.submit_spec(spec)
        except ServiceClosedError as exc:
            handler._error(503, str(exc))
            return
        with self._lock:
            self._jobs[handle.job_id] = handle
        handler._send_json(
            202,
            {
                "job_id": handle.job_id,
                "status": handle.status.value,
                "location": f"/{HTTP_API_VERSION}/jobs/{handle.job_id}",
            },
        )
