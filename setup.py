"""Shim for environments without the `wheel` package (offline installs).

`pip install -e .` on modern pip builds an editable wheel, which requires
the third-party `wheel` module; when it is unavailable this shim lets
`python setup.py develop` perform a legacy editable install with only
setuptools.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
